"""The consolidated command-line front door: ``python -m repro``.

Four subcommands, all thin shims over :class:`repro.api.SimulationService`:

``run``
    Execute one :class:`~repro.api.RunRequest` — scenario, scheme,
    adversary, ``--set`` parameter overrides, seed/repeats — and print a
    summary table (or the full JSON result with ``--json``).
``experiment``
    The experiment suite (tables/figures of the paper), with the exact flags
    ``python -m repro.experiments.runner`` always had.
``bench``
    The hot-path benchmark suite, with the exact flags ``python -m
    repro.bench`` always had.
``catalogue``
    Every registry — reputation schemes, scenarios, adversaries,
    experiments — as text or ``--json``.

Error handling is uniform: any name that fails to resolve against a
registry (scheme, scenario, adversary, experiment) exits with code 2 and a
did-you-mean hint on stderr, whatever subcommand it came through.

The legacy entry points (``python -m repro.experiments.runner``, ``python
-m repro.bench``) remain as deprecation shims that delegate here with
byte-identical stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any

from .analysis.tables import format_table
from .api import RunRequest, SimulationService, UnknownNameError
from .api.catalogue import (
    CATALOGUE_SECTIONS,
    catalogue as build_catalogue,
    resolve_scenario,
    resolve_scheme,
)
from .config import REPUTATION_SCHEMES, SimulationParameters
from .errors import ConfigurationError
from .parallel.executor import BACKENDS

__all__ = ["main", "build_parser"]

_PROG = "python -m repro"


def _stderr(line: str) -> None:
    print(line, file=sys.stderr)


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    """The executor/cache flags shared by every simulation subcommand."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="simulations to run concurrently (1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="executor backend (default: serial for --jobs 1, process otherwise)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "persist completed runs here, keyed by (params fingerprint, seed), "
            "and skip any run already present"
        ),
    )


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


# --------------------------------------------------------------------- #
# catalogue                                                               #
# --------------------------------------------------------------------- #
def _cmd_catalogue(args: argparse.Namespace) -> int:
    sections = build_catalogue()
    if args.section is not None:
        sections = {args.section: sections[args.section]}
    if args.json:
        print(json.dumps(sections, indent=2, sort_keys=True))
        return 0
    for index, (section, entries) in enumerate(sections.items()):
        if args.section is None:
            if index:
                print()
            print(f"[{section}]")
        for name, description in sorted(entries.items()):
            print(f"{name:24s} {description}")
    return 0


# --------------------------------------------------------------------- #
# run                                                                     #
# --------------------------------------------------------------------- #
def _parse_overrides(items: list[str] | None) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for item in items or []:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"--set expects KEY=VALUE, got {item!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw  # bare strings (e.g. --set bootstrap_mode=open)
        overrides[key] = value
    return overrides


def _parse_adversary(text: str | None) -> Any:
    if text is None:
        return None
    if text.lstrip().startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"--adversary is not valid JSON: {exc}") from None
    return text


def _cmd_run(args: argparse.Namespace) -> int:
    request = RunRequest(
        scenario=args.scenario,
        scheme=args.scheme,
        adversary=_parse_adversary(args.adversary),
        overrides=_parse_overrides(args.set),
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        label=args.label,
    )
    progress = None if args.quiet else _stderr
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        backend = service.backend
        result = service.run(request, progress=progress)
        if service.cache is not None:
            _stderr(
                f"(run cache: {service.cache.hits} hit(s), "
                f"{service.cache.misses} miss(es) under "
                f"{service.cache.store.root})"
            )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    params = result.params
    print(
        f"{request.run_label()}: {request.repeats} repeat(s) x "
        f"{params.num_transactions:,} transactions, "
        f"scheme={params.reputation_scheme}, "
        f"adversary={params.adversary.name if params.adversary else 'none'}, "
        f"backend={backend}"
    )
    metrics = [
        ("decision success rate", lambda s: s.success_rate),
        ("cooperative arrivals", lambda s: float(s.arrivals_cooperative)),
        ("uncooperative arrivals", lambda s: float(s.arrivals_uncooperative)),
        ("cooperative admitted", lambda s: float(s.admitted_cooperative)),
        ("uncooperative admitted", lambda s: float(s.admitted_uncooperative)),
        ("final community size", lambda s: float(s.final_total)),
        ("final uncooperative fraction", lambda s: s.final_uncooperative_fraction),
    ]
    rows = []
    for name, getter in metrics:
        mean, std = result.mean(getter)
        rows.append([name, f"{mean:.4g}", f"{std:.3g}"])
    print(format_table(["metric", "mean", "std"], rows))
    print(f"digest: {result.digest()}")
    return 0


# --------------------------------------------------------------------- #
# experiment                                                              #
# --------------------------------------------------------------------- #
def _cmd_experiment(args: argparse.Namespace) -> int:
    # Imported per command: only this subcommand needs the experiments
    # package (every figure module) and the result store.
    from .analysis.storage import ResultStore
    from .api.catalogue import resolve_experiment_ids
    from .experiments.runner import render_report

    base_params: SimulationParameters | None = None
    if args.scenario is not None:
        base_params = resolve_scenario(args.scenario, seed=args.seed)
    if args.scheme is not None:
        scheme = resolve_scheme(args.scheme)
        base_params = (
            base_params
            if base_params is not None
            else SimulationParameters(seed=args.seed)
        ).with_overrides(reputation_scheme=scheme)
    only = resolve_experiment_ids(args.only) if args.only is not None else None
    # A named scenario is already sized; only the paper-default base needs the
    # laptop-friendly 0.1 downscale.
    scale = args.scale if args.scale is not None else (
        1.0 if args.scenario is not None else 0.1
    )
    store = ResultStore(args.out) if args.out is not None else None
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        results = service.run_experiments(
            scale=scale,
            repeats=args.repeats,
            seed=args.seed,
            only=only,
            store=store,
            progress=_stderr,
            base_params=base_params,
            throughput=args.throughput,
        )
        cache = service.cache
    report = render_report(results)
    print(report)
    if store is not None:
        report_path = store.root / "report.md"
        report_path.write_text(report, encoding="utf-8")
        _stderr(f"(report written to {report_path})")
    if cache is not None:
        _stderr(
            f"(run cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"under {cache.store.root})"
        )
    failures = sum(
        1
        for result in results.values()
        for check in result.checks
        if not check.passed
    )
    return 1 if failures else 0


# --------------------------------------------------------------------- #
# bench                                                                   #
# --------------------------------------------------------------------- #
def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported per command: only this subcommand needs the bench package.
    from .bench.hotpath import HotpathBenchConfig, write_report

    if args.quick:
        config = HotpathBenchConfig.quick()
    else:
        config = HotpathBenchConfig(
            num_transactions=args.transactions,
            seed=args.seed,
        )
    if args.warmup is not None:
        config = replace(config, warmup=args.warmup)

    _stderr(
        f"benchmarking hot path ({config.num_transactions:,} transactions "
        f"per end-to-end run, ring sizes {list(config.ring_sizes)}) ..."
    )
    with SimulationService() as service:
        report = service.bench(config)
    path = write_report(report, args.out)

    for row in report["end_to_end"]:
        print(
            f"{row['workload']:16s} {row['before']['tx_per_sec']:>10,.0f} -> "
            f"{row['after']['tx_per_sec']:>10,.0f} tx/s "
            f"({row['speedup']:.2f}x, bit_identical={row['bit_identical']})"
        )
    for row in report["micro"]["ring_ops"]:
        print(
            f"ring n={row['ring_size']:<6d} {row['before_us_per_op']:>8.1f} -> "
            f"{row['after_us_per_op']:>6.1f} us/op ({row['speedup']:.0f}x)"
        )
    lookup = report["micro"]["assignment_lookup"]
    print(
        f"assignment lookup: cold {lookup['cold_us_per_lookup']:.1f} us, "
        f"cached {lookup['cached_us_per_lookup']:.1f} us "
        f"({lookup['cache_speedup']:.0f}x); one join evicted "
        f"{lookup['targeted_eviction']['evicted_by_one_join']} of "
        f"{lookup['targeted_eviction']['cached_subjects']} cached subjects"
    )
    print(f"report written to {path}")
    if not report["all_bit_identical"]:
        _stderr("ERROR: legacy and incremental paths diverged!")
        return 1
    return 0


# --------------------------------------------------------------------- #
# Parser assembly                                                         #
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (one subparser per workflow)."""
    parser = argparse.ArgumentParser(
        prog=_PROG,
        description=(
            "Reputation-lending reproduction: run simulations, regenerate "
            "the paper's experiments, benchmark the hot path, or list every "
            "registry — all through the repro.api service layer."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run one simulation configuration and summarise the outcome",
    )
    run_parser.add_argument(
        "--scenario",
        default=None,
        help="base parameters from the scenario registry (default: Table 1)",
    )
    run_parser.add_argument(
        "--scheme",
        default=None,
        help=f"reputation backend (one of: {', '.join(REPUTATION_SCHEMES)})",
    )
    run_parser.add_argument(
        "--adversary",
        default=None,
        help=(
            "adversary strategy name, or a JSON AdversarySpec object "
            '(e.g. \'{"name": "sybil_swarm", "count": 8}\')'
        ),
    )
    run_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override one SimulationParameters field (repeatable)",
    )
    run_parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="horizon scaling applied after everything else (default: 1.0)",
    )
    run_parser.add_argument("--seed", type=int, default=1, help="master seed")
    run_parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="independent repetitions (each with its own derived seed)",
    )
    run_parser.add_argument(
        "--label", default="", help="tag used in progress lines and derived seeds"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full RunResult document instead of the summary table",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress on stderr"
    )
    _add_executor_options(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="regenerate the paper's tables and figures (the legacy runner)",
    )
    experiment_parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "fraction of the base horizon (default: 0.1 of the paper's 500k "
            "transactions, or 1.0 when --scenario already sizes the run)"
        ),
    )
    experiment_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="independent repetitions per sweep point",
    )
    experiment_parser.add_argument("--seed", type=int, default=1, help="master seed")
    experiment_parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids to run (see `catalogue experiments`)",
    )
    experiment_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON results and the Markdown report",
    )
    experiment_parser.add_argument(
        "--scenario",
        default=None,
        help="base parameters from the scenario registry",
    )
    experiment_parser.add_argument(
        "--scheme",
        default=None,
        help=f"reputation backend (one of: {', '.join(REPUTATION_SCHEMES)})",
    )
    experiment_parser.add_argument(
        "--throughput",
        action="store_true",
        help=(
            "print transactions/sec for every completed simulation run "
            "(cache hits are not re-reported)"
        ),
    )
    _add_executor_options(experiment_parser)
    experiment_parser.set_defaults(handler=_cmd_experiment)

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark the membership-change hot path and write a JSON report",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="where to write the JSON report (default: ./BENCH_hotpath.json)",
    )
    bench_parser.add_argument(
        "--transactions",
        type=int,
        default=5_000,
        help="horizon of each end-to-end workload run (default: 5000)",
    )
    bench_parser.add_argument("--seed", type=int, default=1, help="master seed")
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for CI smoke runs (overrides --transactions; "
        "runs with 0 warmup iterations)",
    )
    bench_parser.add_argument(
        "--warmup",
        type=_nonnegative_int,
        default=None,
        help="untimed end-to-end runs before each timed one "
        "(default: 1, or 0 with --quick)",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    catalogue_parser = subparsers.add_parser(
        "catalogue",
        help="list every registry: schemes, scenarios, adversaries, experiments",
    )
    catalogue_parser.add_argument(
        "section",
        nargs="?",
        choices=list(CATALOGUE_SECTIONS),
        default=None,
        help="restrict the listing to one registry (default: all)",
    )
    catalogue_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (always {section: {name: description}})",
    )
    catalogue_parser.set_defaults(handler=_cmd_catalogue)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 1 experiment shape-check failures or benchmark
    divergence, 2 anything that failed to validate — unknown names (with a
    did-you-mean hint), malformed values, bad flag combinations.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except UnknownNameError as exc:
        _stderr(f"error: {exc}")
        return 2
    except ConfigurationError as exc:
        _stderr(f"error: {exc}")
        return 2
