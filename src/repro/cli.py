"""The consolidated command-line front door: ``python -m repro``.

Six subcommands, all thin shims over :class:`repro.api.SimulationService`:

``run``
    Execute one :class:`~repro.api.RunRequest` — scenario, scheme,
    adversary, ``--set`` parameter overrides, seed/repeats — and print a
    summary table (or the full JSON result with ``--json``).
``serve``
    The long-lived JSON-over-HTTP reputation service
    (:mod:`repro.api.server`): submit runs, stream progress events, query
    reputation persisted in a durable store (:mod:`repro.storage`) that
    survives restarts.
``trace``
    The trace engine: ``record`` a run's event trace, ``replay`` it under
    the same or a modified configuration, ``diff`` two traces down to the
    first diverging event, and ``fuzz`` seeded random-but-valid scenarios
    through property-based invariant checks.
``experiment``
    The experiment suite (tables/figures of the paper), with the exact flags
    ``python -m repro.experiments.runner`` always had.
``bench``
    The hot-path benchmark suite, with the exact flags ``python -m
    repro.bench`` always had.
``catalogue``
    Every registry — reputation schemes, scenarios, adversaries,
    experiments, fuzz generators — as text or ``--json``.

Error handling is uniform: any name that fails to resolve against a
registry (scheme, scenario, adversary, experiment, trace file) exits with
code 2 and a did-you-mean hint on stderr, whatever subcommand it came
through.  ``--set`` accepts flat :class:`SimulationParameters` fields and
dotted adversary fields (``adversary.count=8``,
``adversary.options.waves=2``); any other dotted key exits 2 instead of
being dropped.

The legacy entry points (``python -m repro.experiments.runner``, ``python
-m repro.bench``) remain as deprecation shims that delegate here with
byte-identical stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any, Mapping

from .analysis.tables import format_table
from .api import RunRequest, SimulationService, UnknownNameError, summary_digest
from .api.catalogue import (
    CATALOGUE_SECTIONS,
    catalogue as build_catalogue,
    resolve_adversary,
    resolve_scenario,
    resolve_scheme,
    resolve_trace,
)
from .config import REPUTATION_SCHEMES, SimulationParameters
from .errors import ConfigurationError
from .parallel.executor import BACKENDS

__all__ = ["main", "build_parser"]

_PROG = "python -m repro"


def _stderr(line: str) -> None:
    print(line, file=sys.stderr)


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    """The executor/cache flags shared by every simulation subcommand."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="simulations to run concurrently (1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="executor backend (default: serial for --jobs 1, process otherwise)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "persist completed runs here, keyed by (params fingerprint, seed), "
            "and skip any run already present"
        ),
    )


def _add_sharding_options(parser: argparse.ArgumentParser) -> None:
    """The sharded-engine execution knobs (bit-identical to serial runs)."""
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the ring into this many arcs and run each epoch "
            "through the sharded engine (1 = plain serial engine; results "
            "are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--epoch-length",
        type=_positive_int,
        default=None,
        help="sharded engine's epoch window in transaction steps",
    )


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


# --------------------------------------------------------------------- #
# catalogue                                                               #
# --------------------------------------------------------------------- #
def _cmd_catalogue(args: argparse.Namespace) -> int:
    sections = build_catalogue()
    if args.section is not None:
        sections = {args.section: sections[args.section]}
    if args.json:
        print(json.dumps(sections, indent=2, sort_keys=True))
        return 0
    for index, (section, entries) in enumerate(sections.items()):
        if args.section is None:
            if index:
                print()
            print(f"[{section}]")
        for name, description in sorted(entries.items()):
            print(f"{name:24s} {description}")
    return 0


# --------------------------------------------------------------------- #
# run                                                                     #
# --------------------------------------------------------------------- #
def _parse_overrides(
    items: list[str] | None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Split ``--set`` pairs into flat parameter overrides and dotted keys.

    Flat keys go to ``RunRequest.overrides`` unchanged; dotted keys
    (``adversary.count=8``) are routed onto nested fields by
    :func:`_apply_dotted_overrides` — or rejected loudly there, never
    dropped.
    """
    flat: dict[str, Any] = {}
    dotted: dict[str, Any] = {}
    for item in items or []:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"--set expects KEY=VALUE, got {item!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw  # bare strings (e.g. --set bootstrap_mode=open)
        if "." in key:
            dotted[key] = value
        else:
            flat[key] = value
    return flat, dotted


#: Scalar AdversarySpec fields addressable as ``--set adversary.FIELD=...``.
_ADVERSARY_FIELDS: dict[str, Any] = {
    "name": str,
    "count": int,
    "start_time": float,
    "interval": float,
}


def _apply_dotted_overrides(adversary: Any, dotted: Mapping[str, Any]) -> Any:
    """Route dotted ``--set`` keys onto the request's adversary spec.

    ``adversary.name/count/start_time/interval`` replace spec fields and
    ``adversary.options.KNOB`` merges a strategy knob; anything else — an
    unknown root, an unknown adversary field, or ``adversary.*`` without
    ``--adversary`` — raises :class:`ConfigurationError` (CLI exit 2).
    """
    if not dotted:
        return adversary
    for key in dotted:
        root, _, rest = key.partition(".")
        if root != "adversary" or not rest:
            raise ConfigurationError(
                f"--set {key}: dotted keys address the adversary spec only "
                "(adversary.name/count/start_time/interval or "
                "adversary.options.KNOB); SimulationParameters fields take "
                "no dots"
            )
    if adversary is None:
        raise ConfigurationError(
            "--set adversary.* requires an adversary; pass --adversary NAME"
        )
    spec = adversary
    for key, value in dotted.items():
        path = key.split(".")[1:]
        try:
            if len(path) == 1 and path[0] in _ADVERSARY_FIELDS:
                cast = _ADVERSARY_FIELDS[path[0]]
                spec = replace(spec, **{path[0]: cast(value)})
            elif len(path) == 2 and path[0] == "options":
                spec = spec.with_options(**{path[1]: value})
            else:
                raise ConfigurationError(
                    f"--set {key}: unknown adversary field "
                    f"{'.'.join(path)!r}; expected one of "
                    f"{sorted(_ADVERSARY_FIELDS)} or options.KNOB"
                )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"--set {key}: {exc}") from None
    return spec


def _parse_adversary(text: str | None) -> Any:
    if text is None:
        return None
    if text.lstrip().startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"--adversary is not valid JSON: {exc}") from None
    return text


def _build_request(
    args: argparse.Namespace, trace: dict[str, Any] | None = None
) -> RunRequest:
    """A validated :class:`RunRequest` from the shared simulation flags."""
    flat, dotted = _parse_overrides(args.set)
    adversary = resolve_adversary(_parse_adversary(args.adversary))
    adversary = _apply_dotted_overrides(adversary, dotted)
    return RunRequest(
        scenario=getattr(args, "scenario", None),
        scheme=args.scheme,
        adversary=adversary,
        overrides=flat,
        scale=args.scale,
        seed=getattr(args, "seed", 1),
        repeats=getattr(args, "repeats", 1),
        label=getattr(args, "label", ""),
        trace=trace,
        shards=getattr(args, "shards", 1),
        epoch_length=getattr(args, "epoch_length", None),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    request = _build_request(args)
    progress = None if args.quiet else _stderr
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        backend = service.backend
        result = service.run(request, progress=progress)
        if service.cache is not None:
            _stderr(
                f"(run cache: {service.cache.hits} hit(s), "
                f"{service.cache.misses} miss(es) under "
                f"{service.cache.store.root})"
            )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    params = result.params
    print(
        f"{request.run_label()}: {request.repeats} repeat(s) x "
        f"{params.num_transactions:,} transactions, "
        f"scheme={params.reputation_scheme}, "
        f"adversary={params.adversary.name if params.adversary else 'none'}, "
        f"backend={backend}"
        + (f", shards={request.shards}" if request.shards > 1 else "")
    )
    if request.shards > 1 and result.summaries:
        sharding = result.summaries[0].sharding or {}
        print(
            f"sharding: {sharding.get('epochs', 0)} epoch(s), "
            f"{sharding.get('barriers', 0)} barrier(s), "
            f"{sharding.get('cross_arc_messages', 0)} cross-arc message(s)"
        )
    metrics = [
        ("decision success rate", lambda s: s.success_rate),
        ("cooperative arrivals", lambda s: float(s.arrivals_cooperative)),
        ("uncooperative arrivals", lambda s: float(s.arrivals_uncooperative)),
        ("cooperative admitted", lambda s: float(s.admitted_cooperative)),
        ("uncooperative admitted", lambda s: float(s.admitted_uncooperative)),
        ("final community size", lambda s: float(s.final_total)),
        ("final uncooperative fraction", lambda s: s.final_uncooperative_fraction),
    ]
    rows = []
    for name, getter in metrics:
        mean, std = result.mean(getter)
        rows.append([name, f"{mean:.4g}", f"{std:.3g}"])
    print(format_table(["metric", "mean", "std"], rows))
    print(f"digest: {result.digest()}")
    return 0


# --------------------------------------------------------------------- #
# serve                                                                   #
# --------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace) -> int:
    from .api.server import serve

    serve(
        args.store,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        backend=args.backend,
    )
    return 0


# --------------------------------------------------------------------- #
# trace                                                                   #
# --------------------------------------------------------------------- #
def _cmd_trace_record(args: argparse.Namespace) -> int:
    trace = {
        "mode": "record",
        "path": str(args.out),
        "digest_every": args.digest_every,
    }
    request = _build_request(args, trace=trace)
    progress = None if args.quiet else _stderr
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        result = service.run(request, progress=progress)
    digest = summary_digest(result.summary)
    if args.json:
        print(
            json.dumps(
                {
                    "trace": str(args.out),
                    "summary_digest": digest,
                    "fingerprint": request.fingerprint(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    params = result.params
    print(
        f"recorded {request.run_label()} -> {args.out} "
        f"({params.num_transactions:,} transactions, "
        f"scheme={params.reputation_scheme}, "
        f"adversary={params.adversary.name if params.adversary else 'none'})"
    )
    print(f"summary digest: {digest}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    trace: dict[str, Any] = {
        "mode": "replay",
        "path": args.trace,
        "digest_every": args.digest_every,
    }
    if args.record_to is not None:
        trace["record_to"] = str(args.record_to)
    request = _build_request(args, trace=trace)
    # A replay that changes nothing must reproduce the recording bit-for-bit;
    # one that applies deltas is *expected* to diverge (that is the A/B).
    modified = bool(args.scheme or args.adversary or args.set or args.scale != 1.0)
    progress = None if args.quiet else _stderr
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        result = service.run(request, progress=progress)
    recorded_digest = resolve_trace(args.trace).summary_digest
    replay_digest = summary_digest(result.summary)
    identical = bool(recorded_digest) and replay_digest == recorded_digest
    exit_code = 0 if identical or modified else 1
    if args.json:
        print(
            json.dumps(
                {
                    "trace": args.trace,
                    "recorded_digest": recorded_digest,
                    "replay_digest": replay_digest,
                    "identical": identical,
                    "modified": modified,
                    "record_to": (
                        None if args.record_to is None else str(args.record_to)
                    ),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return exit_code
    if identical:
        status = "bit-identical to the recorded run"
    elif modified:
        status = "diverges from the recorded run (expected: the replay modifies it)"
    else:
        status = "DIVERGES from the recorded run"
    print(f"replayed {args.trace}: {status}")
    print(f"recorded digest: {recorded_digest or '(none)'}")
    print(f"replay digest:   {replay_digest}")
    if args.record_to is not None:
        print(f"replay trace written to {args.record_to}")
    if exit_code:
        _stderr(
            "error: an unmodified replay must reproduce the recorded run "
            "bit-for-bit; bisect with `trace replay --record-to` + `trace diff`"
        )
    return exit_code


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    # Imported per command: only the trace subcommands need the differ.
    from .trace import diff_traces

    log_a = resolve_trace(args.a)
    log_b = resolve_trace(args.b)
    divergences = diff_traces(log_a, log_b, limit=args.limit)
    if args.json:
        print(
            json.dumps(
                {
                    "a": args.a,
                    "b": args.b,
                    "identical": not divergences,
                    "limit": args.limit,
                    "divergences": [
                        {
                            "index": divergence.index,
                            "field": divergence.field,
                            "a": divergence.a,
                            "b": divergence.b,
                        }
                        for divergence in divergences
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if divergences else 0
    if not divergences:
        print(f"traces are identical ({len(log_a.records)} records)")
        return 0
    print(f"first divergence: {divergences[0].describe()}")
    for divergence in divergences[1:]:
        print(f"  then {divergence.describe()}")
    if len(divergences) >= args.limit:
        print(f"  (stopped after --limit {args.limit} divergence(s))")
    return 1


def _cmd_trace_fuzz(args: argparse.Namespace) -> int:
    # Imported per command: the fuzzer pulls in the whole engine stack.
    from .workloads.fuzz import FuzzConfig, run_fuzz_batch

    scheme = resolve_scheme(args.scheme) if args.scheme is not None else None
    config = FuzzConfig(
        seed=args.seed,
        count=args.count,
        scheme=scheme,
        max_transactions=args.max_transactions,
        max_initial_peers=args.max_peers,
    )
    progress = None if args.quiet else _stderr
    report = run_fuzz_batch(config, progress=progress)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    verdict = (
        "all invariants hold"
        if report.ok
        else f"{report.violation_count} invariant violation(s)"
    )
    print(
        f"fuzzed {len(report.results)} scenario(s) from seed {config.seed}: "
        f"{verdict}"
    )
    for result in report.results:
        for violation in result.violations:
            print(f"  {result.scenario.label}: {violation.describe()}")
    return 0 if report.ok else 1


# --------------------------------------------------------------------- #
# experiment                                                              #
# --------------------------------------------------------------------- #
def _cmd_experiment(args: argparse.Namespace) -> int:
    # Imported per command: only this subcommand needs the experiments
    # package (every figure module) and the result store.
    from .analysis.storage import ResultStore
    from .api.catalogue import resolve_experiment_ids
    from .experiments.runner import render_report

    base_params: SimulationParameters | None = None
    if args.scenario is not None:
        base_params = resolve_scenario(args.scenario, seed=args.seed)
    if args.scheme is not None:
        scheme = resolve_scheme(args.scheme)
        base_params = (
            base_params
            if base_params is not None
            else SimulationParameters(seed=args.seed)
        ).with_overrides(reputation_scheme=scheme)
    only = resolve_experiment_ids(args.only) if args.only is not None else None
    # A named scenario is already sized; only the paper-default base needs the
    # laptop-friendly 0.1 downscale.
    scale = args.scale if args.scale is not None else (
        1.0 if args.scenario is not None else 0.1
    )
    store = ResultStore(args.out) if args.out is not None else None
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        results = service.run_experiments(
            scale=scale,
            repeats=args.repeats,
            seed=args.seed,
            only=only,
            store=store,
            progress=_stderr,
            base_params=base_params,
            throughput=args.throughput,
        )
        cache = service.cache
    report = render_report(results)
    print(report)
    if store is not None:
        report_path = store.root / "report.md"
        report_path.write_text(report, encoding="utf-8")
        _stderr(f"(report written to {report_path})")
    if cache is not None:
        _stderr(
            f"(run cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"under {cache.store.root})"
        )
    failures = sum(
        1
        for result in results.values()
        for check in result.checks
        if not check.passed
    )
    return 1 if failures else 0


# --------------------------------------------------------------------- #
# report                                                                  #
# --------------------------------------------------------------------- #
def _cmd_report(args: argparse.Namespace) -> int:
    # Imported per command: the report generator pulls in the experiments
    # package (every figure module), which no other subcommand needs.
    from .report import (
        generate_report,
        render_json,
        render_markdown,
        resolve_report_sections,
        write_report,
    )

    sections = resolve_report_sections(args.sections)
    base_params: SimulationParameters | None = None
    if args.scenario is not None:
        base_params = resolve_scenario(args.scenario, seed=args.seed)
    # Mirrors `experiment`: a named scenario is already sized; only the
    # paper-default base needs the laptop-friendly 0.1 downscale.
    scale = args.scale if args.scale is not None else (
        1.0 if args.scenario is not None else 0.1
    )
    with SimulationService(
        jobs=args.jobs, backend=args.backend, cache=args.cache_dir
    ) as service:
        document = generate_report(
            sections,
            service=service,
            scale=scale,
            repeats=args.repeats,
            seed=args.seed,
            base_params=base_params,
            schemes=args.schemes,
            attacks=args.attacks,
            bench_path=args.bench,
            progress=_stderr,
        )
    print(render_json(document) if args.json else render_markdown(document), end="")
    if args.out is not None:
        json_path, markdown_path = write_report(document, args.out)
        _stderr(f"(report written to {json_path} and {markdown_path})")
    return 1 if document["checks"]["failed"] else 0


# --------------------------------------------------------------------- #
# bench                                                                   #
# --------------------------------------------------------------------- #
def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported per command: only this subcommand needs the bench package.
    from .bench.hotpath import (
        HotpathBenchConfig,
        compare_reports,
        format_compare_table,
        write_report,
    )

    if args.quick:
        config = HotpathBenchConfig.quick()
    else:
        config = HotpathBenchConfig(
            num_transactions=args.transactions,
            seed=args.seed,
        )
    if args.warmup is not None:
        config = replace(config, warmup=args.warmup)

    _stderr(
        f"benchmarking hot path ({config.num_transactions:,} transactions "
        f"per end-to-end run, ring sizes {list(config.ring_sizes)}) ..."
    )
    with SimulationService() as service:
        report = service.bench(config)
    path = write_report(report, args.out)

    for row in report["end_to_end"]:
        print(
            f"{row['workload']:16s} {row['before']['tx_per_sec']:>10,.0f} -> "
            f"{row['after']['tx_per_sec']:>10,.0f} tx/s "
            f"({row['speedup']:.2f}x, bit_identical={row['bit_identical']})"
        )
    for row in report["micro"]["ring_ops"]:
        print(
            f"ring n={row['ring_size']:<6d} {row['before_us_per_op']:>8.1f} -> "
            f"{row['after_us_per_op']:>6.1f} us/op ({row['speedup']:.0f}x)"
        )
    lookup = report["micro"]["assignment_lookup"]
    print(
        f"assignment lookup: cold {lookup['cold_us_per_lookup']:.1f} us, "
        f"cached {lookup['cached_us_per_lookup']:.1f} us "
        f"({lookup['cache_speedup']:.0f}x); one join evicted "
        f"{lookup['targeted_eviction']['evicted_by_one_join']} of "
        f"{lookup['targeted_eviction']['cached_subjects']} cached subjects"
    )
    print(f"report written to {path}")
    if not report["all_bit_identical"]:
        _stderr("ERROR: legacy and incremental paths diverged!")
        return 1
    if args.compare is not None:
        try:
            baseline = json.loads(Path(args.compare).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            _stderr(f"error: cannot read baseline report {args.compare}: {exc}")
            return 2
        comparison = compare_reports(baseline, report, tolerance=args.tolerance)
        print(format_compare_table(comparison))
        if comparison["regressed"]:
            _stderr(
                f"ERROR: throughput regressed more than "
                f"{args.tolerance:.0%} vs {args.compare}"
            )
            return 1
    return 0


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from .bench.profiling import (
        format_profile_text,
        profile_workload,
        write_profile_report,
    )

    _stderr(
        f"profiling growth_stress ({args.transactions:,} transactions, "
        f"seed {args.seed}) under cProfile ..."
    )
    report = profile_workload(
        num_transactions=args.transactions,
        seed=args.seed,
        top=args.top,
        warmup=not args.no_warmup,
    )
    path = write_profile_report(report, args.out)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_profile_text(report))
    _stderr(f"profile report written to {path}")
    return 0


# --------------------------------------------------------------------- #
# Parser assembly                                                         #
# --------------------------------------------------------------------- #
def _add_delta_options(parser: argparse.ArgumentParser) -> None:
    """The request-shaping flags shared by ``run``, ``trace record`` and
    ``trace replay`` (where they express the A/B delta against the trace)."""
    parser.add_argument(
        "--scheme",
        default=None,
        help=f"reputation backend (one of: {', '.join(REPUTATION_SCHEMES)})",
    )
    parser.add_argument(
        "--adversary",
        default=None,
        help=(
            "adversary strategy name, or a JSON AdversarySpec object "
            '(e.g. \'{"name": "sybil_swarm", "count": 8}\')'
        ),
    )
    parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help=(
            "override one SimulationParameters field, or a dotted adversary "
            "field (adversary.count=8, adversary.options.KNOB=...) "
            "(repeatable)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="horizon scaling applied after everything else (default: 1.0)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (one subparser per workflow)."""
    parser = argparse.ArgumentParser(
        prog=_PROG,
        description=(
            "Reputation-lending reproduction: run simulations, regenerate "
            "the paper's experiments, benchmark the hot path, or list every "
            "registry — all through the repro.api service layer."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run one simulation configuration and summarise the outcome",
    )
    run_parser.add_argument(
        "--scenario",
        default=None,
        help="base parameters from the scenario registry (default: Table 1)",
    )
    _add_delta_options(run_parser)
    run_parser.add_argument("--seed", type=int, default=1, help="master seed")
    run_parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="independent repetitions (each with its own derived seed)",
    )
    run_parser.add_argument(
        "--label", default="", help="tag used in progress lines and derived seeds"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full RunResult document instead of the summary table",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress on stderr"
    )
    _add_executor_options(run_parser)
    _add_sharding_options(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the long-lived JSON-over-HTTP reputation service backed by "
            "a durable store (submit runs, stream progress, query persisted "
            "reputation)"
        ),
    )
    serve_parser.add_argument(
        "--store",
        required=True,
        help=(
            "durable store URL (sqlite://path, memory://name) or a bare "
            "sqlite database path; reputation state survives restarts here"
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve_parser.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8737,
        help="TCP port (0 picks a free port; the chosen one is announced)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="simulations to run concurrently (1 = serial)",
    )
    serve_parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help=(
            "executor backend; memory:// stores force an in-process backend, "
            "file-backed stores default like --jobs everywhere else"
        ),
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    trace_parser = subparsers.add_parser(
        "trace",
        help="record, replay, diff and fuzz simulation event traces",
    )
    trace_subparsers = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )

    record_parser = trace_subparsers.add_parser(
        "record",
        help="run one simulation and capture its event trace to a file",
    )
    record_parser.add_argument(
        "--scenario",
        default=None,
        help="base parameters from the scenario registry (default: Table 1)",
    )
    _add_delta_options(record_parser)
    record_parser.add_argument("--seed", type=int, default=1, help="master seed")
    record_parser.add_argument(
        "--label", default="", help="tag used in progress lines and derived seeds"
    )
    record_parser.add_argument(
        "--out",
        type=Path,
        required=True,
        help="trace file to write (JSONL; parent directories are created)",
    )
    record_parser.add_argument(
        "--digest-every",
        type=_positive_int,
        default=1,
        help=(
            "capture a full state digest every N trace records "
            "(1 = every record, the most precise bisection)"
        ),
    )
    record_parser.add_argument(
        "--json",
        action="store_true",
        help="print {trace, summary_digest, fingerprint} instead of prose",
    )
    record_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress on stderr"
    )
    _add_executor_options(record_parser)
    record_parser.set_defaults(handler=_cmd_trace_record)

    replay_parser = trace_subparsers.add_parser(
        "replay",
        help=(
            "re-inject a recorded trace — unmodified (must reproduce the "
            "recorded digest) or under a modified scheme/knobs (an exact A/B)"
        ),
    )
    replay_parser.add_argument("trace", help="trace file to replay")
    _add_delta_options(replay_parser)
    replay_parser.add_argument(
        "--record-to",
        type=Path,
        default=None,
        help="also record the replayed run's trace here (for `trace diff`)",
    )
    replay_parser.add_argument(
        "--digest-every",
        type=_positive_int,
        default=1,
        help="state-digest cadence of the re-recorded trace (with --record-to)",
    )
    replay_parser.add_argument(
        "--json",
        action="store_true",
        help="print the digest comparison as JSON",
    )
    replay_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress on stderr"
    )
    _add_executor_options(replay_parser)
    _add_sharding_options(replay_parser)
    replay_parser.set_defaults(handler=_cmd_trace_replay)

    diff_parser = trace_subparsers.add_parser(
        "diff",
        help="bisect two traces: report the first record where they diverge",
    )
    diff_parser.add_argument("a", help="baseline trace file")
    diff_parser.add_argument("b", help="comparison trace file")
    diff_parser.add_argument(
        "--limit",
        type=_positive_int,
        default=10,
        help="maximum divergences to report (default: 10)",
    )
    diff_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable divergence list",
    )
    diff_parser.set_defaults(handler=_cmd_trace_diff)

    fuzz_parser = trace_subparsers.add_parser(
        "fuzz",
        help=(
            "run seeded random-but-valid scenarios through property-based "
            "invariant checks"
        ),
    )
    fuzz_parser.add_argument(
        "--count",
        type=_positive_int,
        default=25,
        help="scenarios to generate and run (default: 25)",
    )
    fuzz_parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="master seed (scenario i derives from (seed, 'fuzz', i))",
    )
    fuzz_parser.add_argument(
        "--scheme",
        default=None,
        help="pin every scenario to one scheme (default: random per scenario)",
    )
    fuzz_parser.add_argument(
        "--max-transactions",
        type=int,
        default=1200,
        help="cap on each scenario's drawn horizon (default: 1200)",
    )
    fuzz_parser.add_argument(
        "--max-peers",
        type=int,
        default=60,
        dest="max_peers",
        help="cap on each scenario's drawn initial population (default: 60)",
    )
    fuzz_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full fuzz report as JSON",
    )
    fuzz_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-scenario progress on stderr",
    )
    fuzz_parser.set_defaults(handler=_cmd_trace_fuzz)

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="regenerate the paper's tables and figures (the legacy runner)",
    )
    experiment_parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "fraction of the base horizon (default: 0.1 of the paper's 500k "
            "transactions, or 1.0 when --scenario already sizes the run)"
        ),
    )
    experiment_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="independent repetitions per sweep point",
    )
    experiment_parser.add_argument("--seed", type=int, default=1, help="master seed")
    experiment_parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids to run (see `catalogue experiments`)",
    )
    experiment_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for JSON results and the Markdown report",
    )
    experiment_parser.add_argument(
        "--scenario",
        default=None,
        help="base parameters from the scenario registry",
    )
    experiment_parser.add_argument(
        "--scheme",
        default=None,
        help=f"reputation backend (one of: {', '.join(REPUTATION_SCHEMES)})",
    )
    experiment_parser.add_argument(
        "--throughput",
        action="store_true",
        help=(
            "print transactions/sec for every completed simulation run "
            "(cache hits are not re-reported)"
        ),
    )
    _add_executor_options(experiment_parser)
    experiment_parser.set_defaults(handler=_cmd_experiment)

    report_parser = subparsers.add_parser(
        "report",
        help=(
            "consolidated cross-run report: robustness matrix + detection "
            "quality + the committed hot-path benchmark in one artifact"
        ),
    )
    report_parser.add_argument(
        "--sections",
        nargs="*",
        default=None,
        help="subset of report sections (robustness, detection, bench)",
    )
    report_parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "fraction of the base horizon (default: 0.1 of the paper's 500k "
            "transactions, or 1.0 when --scenario already sizes the run)"
        ),
    )
    report_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="independent repetitions per grid cell",
    )
    report_parser.add_argument("--seed", type=int, default=1, help="master seed")
    report_parser.add_argument(
        "--scenario",
        default=None,
        help="base parameters from the scenario registry",
    )
    report_parser.add_argument(
        "--schemes",
        nargs="*",
        default=None,
        help="restrict both grid experiments to these reputation schemes",
    )
    report_parser.add_argument(
        "--attacks",
        nargs="*",
        default=None,
        help="restrict both grid experiments to these adversary strategies",
    )
    report_parser.add_argument(
        "--bench",
        default="BENCH_hotpath.json",
        help=(
            "committed benchmark report for the bench section "
            "(default: ./BENCH_hotpath.json; missing file degrades to a note)"
        ),
    )
    report_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for report.json and report.md",
    )
    report_parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON document instead of the Markdown rendering",
    )
    _add_executor_options(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark the membership-change hot path and write a JSON report",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="where to write the JSON report (default: ./BENCH_hotpath.json)",
    )
    bench_parser.add_argument(
        "--transactions",
        type=int,
        default=5_000,
        help="horizon of each end-to-end workload run (default: 5000)",
    )
    bench_parser.add_argument("--seed", type=int, default=1, help="master seed")
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for CI smoke runs (overrides --transactions; "
        "runs with 0 warmup iterations)",
    )
    bench_parser.add_argument(
        "--warmup",
        type=_nonnegative_int,
        default=None,
        help="untimed end-to-end runs before each timed one "
        "(default: 1, or 0 with --quick)",
    )
    bench_parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help=(
            "after benchmarking, compare per-workload tx/s against this "
            "committed report and exit 1 on a regression beyond --tolerance"
        ),
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help=(
            "fractional throughput drop tolerated by --compare before the "
            "gate fails (default: 0.25)"
        ),
    )
    bench_parser.set_defaults(handler=_cmd_bench, bench_command=None)

    bench_subparsers = bench_parser.add_subparsers(dest="bench_command")
    profile_parser = bench_subparsers.add_parser(
        "profile",
        help=(
            "run growth_stress under cProfile and emit a JSON + text "
            "hotspot report aggregated by subsystem"
        ),
    )
    profile_parser.add_argument(
        "--transactions",
        type=_positive_int,
        default=5_000,
        help="horizon of the profiled run (default: 5000)",
    )
    profile_parser.add_argument("--seed", type=int, default=1, help="master seed")
    profile_parser.add_argument(
        "--top",
        type=_positive_int,
        default=20,
        help="number of functions in the hotspot list (default: 20)",
    )
    profile_parser.add_argument(
        "--out",
        default="PROFILE_hotpath.json",
        help="where to write the JSON report (default: ./PROFILE_hotpath.json)",
    )
    profile_parser.add_argument(
        "--no-warmup",
        action="store_true",
        help="skip the untimed warm-up run before the profiled one",
    )
    profile_parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON document instead of the text hotspot table",
    )
    profile_parser.set_defaults(handler=_cmd_bench_profile)

    catalogue_parser = subparsers.add_parser(
        "catalogue",
        help="list every registry: schemes, scenarios, adversaries, experiments",
    )
    catalogue_parser.add_argument(
        "section",
        nargs="?",
        choices=list(CATALOGUE_SECTIONS),
        default=None,
        help="restrict the listing to one registry (default: all)",
    )
    catalogue_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (always {section: {name: description}})",
    )
    catalogue_parser.set_defaults(handler=_cmd_catalogue)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 1 a run that completed but failed its check —
    experiment shape-checks, benchmark divergence, an unmodified replay that
    did not reproduce the recording, divergent traces under ``trace diff``,
    fuzz invariant violations — and 2 anything that failed to validate:
    unknown names (with a did-you-mean hint), malformed values, bad flag
    combinations.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except UnknownNameError as exc:
        _stderr(f"error: {exc}")
        return 2
    except ConfigurationError as exc:
        _stderr(f"error: {exc}")
        return 2
