"""Iterative Chord lookup over the ring.

The simulator does not charge latency for routing (the paper delivers all
messages instantly), but the hop count is still recorded so overlay overhead
can be reported and the O(log N) property tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ids import KEY_SPACE_SIZE, PeerId
from .hashing import in_interval
from .ring import ChordRing

__all__ = ["RoutingResult", "lookup"]

#: Safety valve: lookups never take more hops than this (ring size is bounded
#: by the simulation, so 2 * 160 hops already indicates a wiring bug).
_MAX_HOPS = 2 * 160


@dataclass
class RoutingResult:
    """Outcome of a key lookup."""

    key: int
    responsible_peer: PeerId
    path: list[int] = field(default_factory=list)

    @property
    def hops(self) -> int:
        """Number of overlay hops taken (0 when the origin was responsible)."""
        return max(0, len(self.path) - 1)


def lookup(ring: ChordRing, origin_peer: PeerId, key: int) -> RoutingResult:
    """Resolve ``key`` starting from ``origin_peer`` using finger tables.

    Falls back to successor-pointer walking (and ultimately to the ring's
    global knowledge) if finger tables have not been built, so the result is
    always correct; only the measured path length differs.
    """
    key %= KEY_SPACE_SIZE
    origin = ring.node_for_peer(origin_peer)
    target = ring.successor_of(key)
    path = [origin.key]
    current = origin.key
    hops = 0
    while current != target.key and hops < _MAX_HOPS:
        current_node = ring.node_for_peer(ring.responsible_peer(current))
        successor = current_node.successor
        if successor is not None and in_interval(key, current, successor):
            path.append(successor)
            break
        next_key = ring.closest_preceding_key(current, key)
        if next_key is None or next_key == current:
            next_key = successor if successor is not None else target.key
        path.append(next_key)
        current = next_key
        hops += 1
    if path[-1] != target.key:
        path.append(target.key)
    return RoutingResult(key=key, responsible_peer=target.peer_id, path=path)
