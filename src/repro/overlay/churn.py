"""Churn handling: joins and leaves with score-manager state migration.

When a node joins, part of its successor's key range becomes its own and the
reputation records stored for those keys must be handed over.  When a node
leaves (or crashes), its records must be recoverable from the remaining
replicas.  :class:`ChurnManager` performs these transfers against an abstract
``ReputationStore`` interface (any object exposing ``records_for(peer_id)``
and ``install_record(manager_id, peer_id, record)``), so the overlay layer
stays independent from ROCQ internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Protocol

from ..ids import PeerId
from .assignment import ScoreManagerAssignment
from .ring import ChordRing

__all__ = ["ChurnKind", "ChurnEvent", "ChurnManager", "ReputationStoreProtocol"]


class ChurnKind(str, Enum):
    """Type of membership change."""

    JOIN = "join"
    LEAVE = "leave"
    CRASH = "crash"


@dataclass(frozen=True)
class ChurnEvent:
    """Record of one membership change and the migrations it caused."""

    kind: ChurnKind
    peer_id: PeerId
    time: float
    migrated_records: int = 0


class ReputationStoreProtocol(Protocol):
    """Minimal store interface the churn manager migrates records through."""

    def tracked_peers(self, manager_id: PeerId) -> Iterable[PeerId]:
        """Peers whose reputation ``manager_id`` currently stores."""

    def export_record(self, manager_id: PeerId, subject_id: PeerId) -> object | None:
        """Return the stored record (opaque to the overlay), or ``None``."""

    def install_record(
        self, manager_id: PeerId, subject_id: PeerId, record: object
    ) -> None:
        """Install a migrated record at a new manager."""

    def drop_manager(self, manager_id: PeerId) -> None:
        """Forget all records held by a departed manager."""


@dataclass
class ChurnManager:
    """Applies joins/leaves to the ring and migrates reputation records."""

    ring: ChordRing
    assignment: ScoreManagerAssignment
    store: ReputationStoreProtocol | None = None
    history: list[ChurnEvent] = field(default_factory=list)

    def join(self, peer_id: PeerId, time: float = 0.0) -> ChurnEvent:
        """Add ``peer_id`` to the overlay and pull the records it now manages."""
        tracked_before = self._snapshot_assignments()
        self.ring.join(peer_id)
        self._notify_store_of_change()
        migrated = self._migrate(tracked_before)
        event = ChurnEvent(
            kind=ChurnKind.JOIN, peer_id=peer_id, time=time, migrated_records=migrated
        )
        self.history.append(event)
        return event

    def leave(
        self, peer_id: PeerId, time: float = 0.0, crashed: bool = False
    ) -> ChurnEvent:
        """Remove ``peer_id`` from the overlay, re-homing the records it held."""
        tracked_before = self._snapshot_assignments()
        self.ring.leave(peer_id)
        self._notify_store_of_change()
        if self.store is not None:
            self.store.drop_manager(peer_id)
        migrated = self._migrate(tracked_before, departed=peer_id)
        event = ChurnEvent(
            kind=ChurnKind.CRASH if crashed else ChurnKind.LEAVE,
            peer_id=peer_id,
            time=time,
            migrated_records=migrated,
        )
        self.history.append(event)
        return event

    # ------------------------------------------------------------------ #
    # Internal                                                             #
    # ------------------------------------------------------------------ #
    def _managers_lookup(self):
        """Per-peer manager resolution, via the store's cache when it has one.

        The rocq store memoises assignments (and keeps the memo coherent
        through ``membership_changed``), so snapshotting every live peer
        before a change — and re-resolving after it — only recomputes the
        peers the change actually touched instead of hashing ``numSM``
        replica keys per peer per churn event.
        """
        store_lookup = getattr(self.store, "managers_for", None)
        if store_lookup is not None:
            return store_lookup
        return self.assignment.managers_for

    def _notify_store_of_change(self) -> None:
        """Tell a cache-keeping store which arc the ring change moved.

        An idempotent re-join records no change (``last_change is None``) and
        is not forwarded: nothing moved, so nothing may be invalidated.
        """
        if self.ring.last_change is None:
            return
        handler = getattr(self.store, "membership_changed", None)
        if handler is not None:
            handler(self.ring.last_change)

    def _snapshot_assignments(self) -> dict[PeerId, list[PeerId]]:
        """Capture the manager set of every live peer before the change."""
        lookup = self._managers_lookup()
        return {peer_id: lookup(peer_id) for peer_id in self.ring.peers()}

    def _migrate(
        self,
        before: dict[PeerId, list[PeerId]],
        departed: PeerId | None = None,
    ) -> int:
        """Copy records to managers that gained responsibility; count copies."""
        lookup = self._managers_lookup()
        if self.store is None:
            # Still count logical reassignments so overhead metrics exist.
            migrated = 0
            for subject, old_managers in before.items():
                if subject not in self.ring and subject != departed:
                    continue
                new_managers = lookup(subject)
                gained = set(new_managers) - set(old_managers)
                if gained:
                    self.assignment.note_reassignment()
                    migrated += len(gained)
            return migrated

        migrated = 0
        for subject, old_managers in before.items():
            new_managers = lookup(subject)
            gained = set(new_managers) - set(old_managers)
            if not gained:
                continue
            self.assignment.note_reassignment()
            surviving_sources = [m for m in old_managers if m != departed]
            record = None
            for source in surviving_sources:
                record = self.store.export_record(source, subject)
                if record is not None:
                    break
            if record is None:
                continue
            for manager in gained:
                self.store.install_record(manager, subject, record)
                migrated += 1
        return migrated
