"""Consistent-hashing arithmetic on the circular identifier space."""

from __future__ import annotations

from ..ids import KEY_SPACE_SIZE

__all__ = ["ring_distance", "in_interval", "clockwise_distance"]


def ring_distance(a: int, b: int) -> int:
    """Shortest distance between two keys on the identifier circle."""
    a %= KEY_SPACE_SIZE
    b %= KEY_SPACE_SIZE
    direct = abs(a - b)
    return min(direct, KEY_SPACE_SIZE - direct)


def clockwise_distance(a: int, b: int) -> int:
    """Distance travelled going clockwise (increasing keys) from ``a`` to ``b``."""
    return (b - a) % KEY_SPACE_SIZE


def in_interval(key: int, left: int, right: int, inclusive_right: bool = True) -> bool:
    """Return True if ``key`` lies in the clockwise interval ``(left, right]``.

    The interval wraps around zero when ``left >= right``.  With
    ``inclusive_right=False`` the interval is open on both sides, which is the
    form Chord's finger-table maintenance uses.
    """
    key %= KEY_SPACE_SIZE
    left %= KEY_SPACE_SIZE
    right %= KEY_SPACE_SIZE
    if left == right:
        # The interval spans the entire ring (except possibly the endpoint).
        return inclusive_right or key != right
    if left < right:
        upper_ok = key <= right if inclusive_right else key < right
        return left < key and upper_ok
    upper_ok = key <= right if inclusive_right else key < right
    return key > left or upper_ok
