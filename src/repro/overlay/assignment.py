"""Score-manager assignment.

ROCQ stores every peer's reputation at ``numSM`` *score managers*: the overlay
nodes responsible for ``numSM`` independent hashes of the peer's identifier.
Replication matters for two reasons the paper calls out explicitly:

* redundancy when a score manager crashes or leaves before forwarding an
  introduction message (§2, "Multiple introduction requests"), and
* robustness of DHT-based routing under churn — "by using multiple score
  managers this impact is significantly reduced" (§3).

:class:`ScoreManagerAssignment` resolves the current managers for a peer and
tracks how responsibility moves when the ring changes.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable

from ..ids import PeerId, replica_key
from .ring import ChordRing

__all__ = ["ScoreManagerAssignment"]


@dataclass
class ScoreManagerAssignment:
    """Maps peers to their current set of score-manager peers."""

    ring: ChordRing
    num_score_managers: int
    #: Exclude a peer from managing its own reputation (the realistic choice;
    #: can be disabled for tiny test rings where exclusion is impossible).
    exclude_self: bool = True
    _reassignments: int = field(default=0, repr=False)
    #: Memoised replica keys per subject.  ``replica_key`` is a pure hash of
    #: ``(peer_id, replica_index)`` — independent of ring membership — so the
    #: tuple never needs invalidation; without it every cold assignment
    #: lookup pays ``num_score_managers`` SHA-1 digests.
    _replica_keys: dict[PeerId, tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )

    def replica_keys_for(self, peer_id: PeerId) -> tuple[int, ...]:
        """The DHT keys of ``peer_id``'s score-manager replicas (memoised)."""
        keys = self._replica_keys.get(peer_id)
        if keys is None:
            keys = tuple(
                replica_key(peer_id, index)
                for index in range(self.num_score_managers)
            )
            self._replica_keys[peer_id] = keys
        return keys

    def managers_for(self, peer_id: PeerId) -> list[PeerId]:
        """Return the peers currently responsible for ``peer_id``'s reputation.

        The list preserves replica order (replica ``i`` maps to element ``i``)
        and may contain fewer than ``num_score_managers`` *distinct* peers on
        very small rings; duplicates are removed while keeping order so the
        caller always sees each manager once.
        """
        return self.assignment_with_dependencies(peer_id)[0]

    def assignment_with_dependencies(
        self, peer_id: PeerId
    ) -> tuple[list[PeerId], tuple[int, ...]]:
        """The managers of ``peer_id`` plus the ring keys they depend on.

        The second element lists the keys of every candidate node the
        selection looked at (the chosen managers and any self-excluded
        subject node).  A membership change can only alter the assignment if
        it lands on — or immediately in front of — one of these nodes, which
        is what lets the reputation store evict cache entries selectively
        (see :meth:`repro.rocq.store.ReputationStore.membership_changed`).
        """
        managers, dependency_keys, _ = self.assignment_details(peer_id)
        return managers, dependency_keys

    def assignment_details(
        self, peer_id: PeerId
    ) -> tuple[list[PeerId], tuple[int, ...], tuple[tuple[int, int, int], ...] | None]:
        """Managers, dependency keys and the clockwise arcs they were picked from.

        The third element holds one ``(replica_key, first_candidate_key,
        last_candidate_key)`` triple per replica: the candidate list of that
        replica changes under a **join** exactly when the new node's key
        lands inside the clockwise interval ``(replica_key,
        last_candidate_key]``.  The first-candidate key splits that window
        in two — a join landing in ``(replica_key, first_candidate_key]``
        displaces the *first* candidate (so the chosen manager can change),
        while one landing in ``(first_candidate_key, last_candidate_key]``
        only displaces the second.  The reputation store uses the windows
        both to skip revalidating cached subjects whose arcs a join did not
        touch and to patch second-candidate-only changes in place.  ``None``
        when the ring was too small to produce a full candidate list (then
        every join can alter the assignment and callers must always
        revalidate).
        """
        ring = self.ring
        if len(ring) == 0:
            return [], (), None
        managers: list[PeerId] = []
        seen: set[PeerId] = set()
        dependency_keys: list[int] = []
        dependency_seen: set[int] = set()
        windows: list[tuple[int, int, int]] = []
        windows_valid = True
        if self.exclude_self:
            # At most one candidate (the subject itself) can be skipped, so
            # two successors per replica key are always enough to pick a
            # manager.  ``ring.successor_pair`` is inlined over the ring's
            # sorted key list: this resolution runs once per cached subject
            # per membership change on churn-heavy workloads, and the
            # per-replica call overhead was the single largest cost left in
            # it.  Replica keys are SHA-1-derived and always canonical, so
            # no modulo is needed before the bisect.
            sorted_keys = ring._sorted_keys
            nodes_by_key = ring._nodes_by_key
            total = len(sorted_keys)
            skip_self = total > 1
            for key in self.replica_keys_for(peer_id):
                index = bisect_left(sorted_keys, key)
                if index == total:
                    index = 0
                first_key = sorted_keys[index]
                first = nodes_by_key[first_key]
                if first_key not in dependency_seen:
                    dependency_keys.append(first_key)
                    dependency_seen.add(first_key)
                if total == 1:
                    # Single-node ring: no full candidate list, no window.
                    windows_valid = False
                    chosen = first.peer_id
                else:
                    index += 1
                    second_key = sorted_keys[index if index < total else 0]
                    if second_key not in dependency_seen:
                        dependency_keys.append(second_key)
                        dependency_seen.add(second_key)
                    windows.append((key, first_key, second_key))
                    if skip_self and first.peer_id == peer_id:
                        chosen = nodes_by_key[second_key].peer_id
                    else:
                        chosen = first.peer_id
                if chosen not in seen:
                    managers.append(chosen)
                    seen.add(chosen)
        else:
            successor_of = ring.successor_of
            for key in self.replica_keys_for(peer_id):
                node = successor_of(key)
                node_key = node.key
                if node_key not in dependency_seen:
                    dependency_keys.append(node_key)
                    dependency_seen.add(node_key)
                # Sole candidate: first and last coincide, so the store's
                # second-candidate patch path can never trigger for it.
                windows.append((key, node_key, node_key))
                chosen = node.peer_id
                if chosen not in seen:
                    managers.append(chosen)
                    seen.add(chosen)
        return (
            managers,
            tuple(dependency_keys),
            tuple(windows) if windows_valid else None,
        )

    def managed_by(
        self,
        manager_id: PeerId,
        peers: list[PeerId],
        managers_lookup: Callable[[PeerId], list[PeerId]] | None = None,
    ) -> list[PeerId]:
        """Return the subset of ``peers`` whose reputation ``manager_id`` manages.

        ``managers_lookup`` lets callers route the per-peer manager
        resolution through a cache (the reputation store's assignment cache)
        instead of recomputing ``managers_for`` — ``num_score_managers``
        hashes and ring lookups per peer — on every call.
        """
        lookup = self.managers_for if managers_lookup is None else managers_lookup
        return [p for p in peers if manager_id in lookup(p)]

    def note_reassignment(self) -> None:
        """Record that churn forced a responsibility transfer (metrics hook)."""
        self._reassignments += 1

    @property
    def reassignments(self) -> int:
        """Number of responsibility transfers observed so far."""
        return self._reassignments
