"""Score-manager assignment.

ROCQ stores every peer's reputation at ``numSM`` *score managers*: the overlay
nodes responsible for ``numSM`` independent hashes of the peer's identifier.
Replication matters for two reasons the paper calls out explicitly:

* redundancy when a score manager crashes or leaves before forwarding an
  introduction message (§2, "Multiple introduction requests"), and
* robustness of DHT-based routing under churn — "by using multiple score
  managers this impact is significantly reduced" (§3).

:class:`ScoreManagerAssignment` resolves the current managers for a peer and
tracks how responsibility moves when the ring changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ids import PeerId, replica_key
from .ring import ChordRing

__all__ = ["ScoreManagerAssignment"]


@dataclass
class ScoreManagerAssignment:
    """Maps peers to their current set of score-manager peers."""

    ring: ChordRing
    num_score_managers: int
    #: Exclude a peer from managing its own reputation (the realistic choice;
    #: can be disabled for tiny test rings where exclusion is impossible).
    exclude_self: bool = True
    _reassignments: int = field(default=0, repr=False)

    def managers_for(self, peer_id: PeerId) -> list[PeerId]:
        """Return the peers currently responsible for ``peer_id``'s reputation.

        The list preserves replica order (replica ``i`` maps to element ``i``)
        and may contain fewer than ``num_score_managers`` *distinct* peers on
        very small rings; duplicates are removed while keeping order so the
        caller always sees each manager once.
        """
        return self.assignment_with_dependencies(peer_id)[0]

    def assignment_with_dependencies(
        self, peer_id: PeerId
    ) -> tuple[list[PeerId], tuple[int, ...]]:
        """The managers of ``peer_id`` plus the ring keys they depend on.

        The second element lists the keys of every candidate node the
        selection looked at (the chosen managers and any self-excluded
        subject node).  A membership change can only alter the assignment if
        it lands on — or immediately in front of — one of these nodes, which
        is what lets the reputation store evict cache entries selectively
        (see :meth:`repro.rocq.store.ReputationStore.membership_changed`).
        """
        if len(self.ring) == 0:
            return [], ()
        managers: list[PeerId] = []
        seen: set[PeerId] = set()
        dependency_keys: list[int] = []
        dependency_seen: set[int] = set()
        # At most one candidate (the subject itself) can be skipped, so two
        # successors per replica key are always enough to pick a manager.
        candidates_needed = 2 if self.exclude_self else 1
        for replica_index in range(self.num_score_managers):
            key = replica_key(peer_id, replica_index)
            candidates = self.ring.successors_of(key, candidates_needed)
            chosen: PeerId | None = None
            for node in candidates:
                if node.key not in dependency_seen:
                    dependency_keys.append(node.key)
                    dependency_seen.add(node.key)
                if chosen is not None:
                    continue
                if self.exclude_self and node.peer_id == peer_id and len(self.ring) > 1:
                    continue
                chosen = node.peer_id
            if chosen is None:
                chosen = candidates[0].peer_id if candidates else peer_id
            if chosen not in seen:
                managers.append(chosen)
                seen.add(chosen)
        return managers, tuple(dependency_keys)

    def managed_by(
        self,
        manager_id: PeerId,
        peers: list[PeerId],
        managers_lookup: Callable[[PeerId], list[PeerId]] | None = None,
    ) -> list[PeerId]:
        """Return the subset of ``peers`` whose reputation ``manager_id`` manages.

        ``managers_lookup`` lets callers route the per-peer manager
        resolution through a cache (the reputation store's assignment cache)
        instead of recomputing ``managers_for`` — ``num_score_managers``
        hashes and ring lookups per peer — on every call.
        """
        lookup = self.managers_for if managers_lookup is None else managers_lookup
        return [p for p in peers if manager_id in lookup(p)]

    def note_reassignment(self) -> None:
        """Record that churn forced a responsibility transfer (metrics hook)."""
        self._reassignments += 1

    @property
    def reassignments(self) -> int:
        """Number of responsibility transfers observed so far."""
        return self._reassignments
