"""A single node participating in the Chord-style overlay."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ids import KEY_SPACE_BITS, KEY_SPACE_SIZE, PeerId, peer_key

__all__ = ["OverlayNode"]


@dataclass
class OverlayNode:
    """Overlay presence of a peer.

    Each simulated peer owns exactly one overlay node placed at
    ``peer_key(peer_id)`` on the identifier circle.  The node keeps the
    classic Chord state: successor, predecessor and a finger table with one
    entry per bit of the key space.  Finger tables are filled lazily by the
    ring (centralised in the simulator — we do not model the stabilisation
    message exchange because the paper assumes instantaneous, loss-free
    delivery).

    Attributes
    ----------
    peer_id:
        The simulator-level identifier of the owning peer.
    key:
        Position on the identifier circle.
    successor / predecessor:
        Neighbouring keys on the ring (``None`` until the node is wired in).
    fingers:
        ``fingers[i]`` is the key of the first node that succeeds
        ``key + 2**i``; an empty list means the table has not been built yet.
    """

    peer_id: PeerId
    key: int = -1
    successor: int | None = None
    predecessor: int | None = None
    fingers: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.key < 0:
            self.key = peer_key(self.peer_id)
        self.key %= KEY_SPACE_SIZE

    def finger_start(self, index: int) -> int:
        """Key targeted by finger ``index`` (``key + 2**index`` mod ring size)."""
        if not 0 <= index < KEY_SPACE_BITS:
            raise IndexError(f"finger index out of range: {index}")
        return (self.key + (1 << index)) % KEY_SPACE_SIZE

    def clear_routing_state(self) -> None:
        """Drop successor/predecessor/fingers (used when the node leaves)."""
        self.successor = None
        self.predecessor = None
        self.fingers.clear()

    def __hash__(self) -> int:  # nodes are placed in sets keyed by ring position
        return hash(self.key)
