"""Arc partition of the Chord identifier circle.

The sharded simulation engine (:mod:`repro.sim.sharded`) splits the 160-bit
ring into ``shards`` contiguous, equal-width arcs and runs each arc's event
stream on its own worker.  Arc membership of a key is pure integer
arithmetic — ``(key * shards) >> KEY_SPACE_BITS`` — so routing an event to
its shard costs one multiply and one shift, needs no ring lookups, and every
worker process computes the identical partition without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ids import KEY_SPACE_BITS, KEY_SPACE_SIZE, PeerId, peer_key, replica_key

__all__ = ["ArcPartition"]


@dataclass(frozen=True)
class ArcPartition:
    """``shards`` contiguous arcs covering the ``[0, 2**160)`` key circle.

    Arc ``a`` covers exactly the keys with ``(key * shards) >> 160 == a``:
    a half-open interval of the circle, within one key of ``2**160/shards``
    wide.  Instances are frozen and hashable, so they can ride inside
    picklable worker payloads.
    """

    shards: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    def arc_of_key(self, key: int) -> int:
        """The arc index owning ``key`` (canonicalised onto the circle)."""
        if key >= KEY_SPACE_SIZE or key < 0:
            key %= KEY_SPACE_SIZE
        return (key * self.shards) >> KEY_SPACE_BITS

    def arc_of_peer(self, peer_id: PeerId) -> int:
        """The arc owning ``peer_id``'s own overlay node."""
        return self.arc_of_key(peer_key(peer_id))

    def manager_arcs(self, peer_id: PeerId, num_score_managers: int) -> set[int]:
        """Arcs holding any of ``peer_id``'s score-manager replica keys.

        Replica keys are pure hashes of ``(peer_id, index)``, so this needs
        no ring state — which is what lets shard workers compute cross-arc
        message destinations for membership events without sharing the ring.
        """
        return {
            self.arc_of_key(replica_key(peer_id, index))
            for index in range(num_score_managers)
        }

    def bounds(self, arc: int) -> tuple[int, int]:
        """The half-open key interval ``[lo, hi)`` covered by ``arc``."""
        if not 0 <= arc < self.shards:
            raise ValueError(f"arc must be in [0, {self.shards}), got {arc}")
        lo = -(-arc * KEY_SPACE_SIZE // self.shards) if arc else 0
        hi = (
            -(-(arc + 1) * KEY_SPACE_SIZE // self.shards)
            if arc + 1 < self.shards
            else KEY_SPACE_SIZE
        )
        return lo, hi
