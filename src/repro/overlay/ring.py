"""The Chord-style ring: node membership, successor lookup, finger tables.

The ring is maintained centrally (a sorted list of keys) because the paper's
simulator assumes instantaneous, loss-free message delivery; what matters for
the experiments is *which* node is responsible for *which* key, and how that
responsibility moves under churn.  Lookup nevertheless follows the Chord
finger-table walk so routing path lengths remain realistic (O(log N) hops) and
can be measured.

Membership changes are incremental, as in Chord itself: a join or leave only
touches the two neighbouring nodes' successor/predecessor pointers, and the
ring records which arc changed hands in :attr:`ChordRing.last_change` so
downstream caches can invalidate selectively.  The old whole-ring rewiring
survives as :meth:`ChordRing.rewire_all` — the reference implementation the
property tests (and the benchmark harness's legacy mode) compare against.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from ..errors import UnknownPeerError
from ..ids import KEY_SPACE_BITS, PeerId
from .hashing import in_interval
from .membership import MembershipChange, MembershipKind
from .node import OverlayNode

#: Size of the identifier circle, hoisted: computing ``1 << 160`` and taking
#: a 160-bit modulo on every lookup is measurable on the assignment hot path,
#: and keys produced by ``hash_to_key``/``replica_key`` are already in range.
_KEY_SPACE = 1 << KEY_SPACE_BITS

__all__ = ["ChordRing"]


@dataclass
class ChordRing:
    """In-memory Chord ring holding one :class:`OverlayNode` per live peer."""

    _nodes_by_key: dict[int, OverlayNode] = field(default_factory=dict)
    _nodes_by_peer: dict[PeerId, OverlayNode] = field(default_factory=dict)
    _sorted_keys: list[int] = field(default_factory=list)
    #: The :class:`MembershipChange` produced by the most recent ``join`` or
    #: ``leave`` (``None`` initially, and after an idempotent no-op join).
    last_change: MembershipChange | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Membership                                                           #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sorted_keys)

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._nodes_by_peer

    def peers(self) -> list[PeerId]:
        """Return the peer ids of all live overlay nodes (unordered)."""
        return list(self._nodes_by_peer)

    def node_for_peer(self, peer_id: PeerId) -> OverlayNode:
        """Return the overlay node owned by ``peer_id``."""
        try:
            return self._nodes_by_peer[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(peer_id) from exc

    def join(self, peer_id: PeerId) -> OverlayNode:
        """Add ``peer_id``'s node to the ring and wire its neighbours.

        Only the new node and its two ring neighbours are touched: an
        O(log n) position lookup, O(1) pointer updates, and one C-level
        memmove of the sorted key list (``list.insert``) — no Python-level
        work proportional to ring size, unlike the old whole-ring rewiring.
        The arc the node takes over from its successor is recorded in
        :attr:`last_change`.
        """
        if peer_id in self._nodes_by_peer:
            self.last_change = None
            return self._nodes_by_peer[peer_id]
        node = OverlayNode(peer_id=peer_id)
        # Handle the (astronomically unlikely) key collision by linear probing.
        while node.key in self._nodes_by_key:
            node.key = (node.key + 1) % (1 << KEY_SPACE_BITS)
        self._nodes_by_key[node.key] = node
        self._nodes_by_peer[peer_id] = node
        index = bisect_left(self._sorted_keys, node.key)
        self._sorted_keys.insert(index, node.key)
        total = len(self._sorted_keys)
        successor_key = self._sorted_keys[(index + 1) % total]
        predecessor_key = self._sorted_keys[(index - 1) % total]
        node.successor = successor_key
        node.predecessor = predecessor_key
        # On a single-node ring both neighbours are the node itself, and the
        # two writes below simply re-assert its self-pointers.
        self._nodes_by_key[predecessor_key].successor = node.key
        self._nodes_by_key[successor_key].predecessor = node.key
        self.last_change = MembershipChange(
            kind=MembershipKind.JOIN,
            peer_id=peer_id,
            node_key=node.key,
            predecessor_key=predecessor_key,
            successor_key=successor_key,
            ring_size=total,
        )
        return node

    def leave(self, peer_id: PeerId) -> OverlayNode:
        """Remove ``peer_id``'s node from the ring and return it.

        The departing node's predecessor and successor are linked to each
        other directly; no other node is touched.  The arc the node hands
        back to its successor is recorded in :attr:`last_change`.
        """
        node = self.node_for_peer(peer_id)
        del self._nodes_by_peer[peer_id]
        del self._nodes_by_key[node.key]
        index = bisect_left(self._sorted_keys, node.key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == node.key:
            self._sorted_keys.pop(index)
        total = len(self._sorted_keys)
        if total:
            successor_key = self._sorted_keys[index % total]
            predecessor_key = self._sorted_keys[(index - 1) % total]
            self._nodes_by_key[predecessor_key].successor = successor_key
            self._nodes_by_key[successor_key].predecessor = predecessor_key
        else:
            successor_key = node.key
            predecessor_key = node.key
        node.clear_routing_state()
        self.last_change = MembershipChange(
            kind=MembershipKind.LEAVE,
            peer_id=peer_id,
            node_key=node.key,
            predecessor_key=predecessor_key,
            successor_key=successor_key,
            ring_size=total,
        )
        return node

    # ------------------------------------------------------------------ #
    # Responsibility                                                       #
    # ------------------------------------------------------------------ #
    def successor_of(self, key: int) -> OverlayNode:
        """Return the node responsible for ``key`` (its clockwise successor)."""
        if not self._sorted_keys:
            raise UnknownPeerError(-1)
        if key >= _KEY_SPACE or key < 0:
            key %= _KEY_SPACE
        index = bisect_left(self._sorted_keys, key)
        if index == len(self._sorted_keys):
            index = 0
        return self._nodes_by_key[self._sorted_keys[index]]

    def successors_of(self, key: int, count: int) -> list[OverlayNode]:
        """Return up to ``count`` distinct nodes clockwise from ``key``."""
        keys = self._sorted_keys
        total = len(keys)
        if not total:
            return []
        if count > total:
            count = total
        if key >= _KEY_SPACE or key < 0:
            key %= _KEY_SPACE
        start = bisect_left(keys, key)
        if start == total:
            start = 0
        nodes = self._nodes_by_key
        end = start + count
        if end <= total:
            return [nodes[ring_key] for ring_key in keys[start:end]]
        return [nodes[keys[index % total]] for index in range(start, end)]

    def successor_pair(self, key: int) -> tuple[OverlayNode | None, OverlayNode | None]:
        """The first two distinct nodes clockwise from ``key`` as a tuple.

        Equivalent to ``successors_of(key, 2)`` but without building a list —
        manager assignment resolves two candidates per replica key, and on
        churn-heavy workloads that resolution runs once per cached subject per
        membership change, so the list allocation is measurable.  The second
        element is ``None`` on a single-node ring; both are ``None`` when the
        ring is empty.
        """
        keys = self._sorted_keys
        total = len(keys)
        if not total:
            return None, None
        if key >= _KEY_SPACE or key < 0:
            key %= _KEY_SPACE
        index = bisect_left(keys, key)
        if index == total:
            index = 0
        nodes = self._nodes_by_key
        first = nodes[keys[index]]
        if total == 1:
            return first, None
        index += 1
        second = nodes[keys[index if index < total else 0]]
        return first, second

    def responsible_peer(self, key: int) -> PeerId:
        """Peer id of the node responsible for ``key``."""
        return self.successor_of(key).peer_id

    # ------------------------------------------------------------------ #
    # Finger tables                                                        #
    # ------------------------------------------------------------------ #
    def build_fingers(self, peer_id: PeerId) -> None:
        """(Re)build the full finger table of ``peer_id``'s node."""
        node = self.node_for_peer(peer_id)
        node.fingers = [
            self.successor_of(node.finger_start(i)).key for i in range(KEY_SPACE_BITS)
        ]

    def closest_preceding_key(self, from_key: int, target: int) -> int | None:
        """Finger-table step: the known key closest to (but before) ``target``.

        Returns ``None`` when no finger precedes the target, in which case the
        lookup falls through to the successor pointer.
        """
        node = self._nodes_by_key.get(from_key)
        if node is None or not node.fingers:
            return None
        for finger_key in reversed(node.fingers):
            if finger_key in self._nodes_by_key and in_interval(
                finger_key, from_key, target, inclusive_right=False
            ):
                return finger_key
        return None

    # ------------------------------------------------------------------ #
    # Reference rewiring                                                   #
    # ------------------------------------------------------------------ #
    def rewire_all(self) -> None:
        """Rebuild every successor/predecessor pointer from the sorted keys.

        O(n) over the whole ring — ``join``/``leave`` no longer need it, but
        it remains the ground truth that incremental rewiring is checked
        against (property tests) and the cost model of the benchmark
        harness's legacy mode.
        """
        keys = self._sorted_keys
        total = len(keys)
        for index, key in enumerate(keys):
            node = self._nodes_by_key[key]
            node.successor = keys[(index + 1) % total]
            node.predecessor = keys[(index - 1) % total]
