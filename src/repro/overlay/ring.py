"""The Chord-style ring: node membership, successor lookup, finger tables.

The ring is maintained centrally (a sorted list of keys) because the paper's
simulator assumes instantaneous, loss-free message delivery; what matters for
the experiments is *which* node is responsible for *which* key, and how that
responsibility moves under churn.  Lookup nevertheless follows the Chord
finger-table walk so routing path lengths remain realistic (O(log N) hops) and
can be measured.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field

from ..errors import UnknownPeerError
from ..ids import KEY_SPACE_BITS, PeerId
from .hashing import in_interval
from .node import OverlayNode

__all__ = ["ChordRing"]


@dataclass
class ChordRing:
    """In-memory Chord ring holding one :class:`OverlayNode` per live peer."""

    _nodes_by_key: dict[int, OverlayNode] = field(default_factory=dict)
    _nodes_by_peer: dict[PeerId, OverlayNode] = field(default_factory=dict)
    _sorted_keys: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Membership                                                           #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sorted_keys)

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._nodes_by_peer

    def peers(self) -> list[PeerId]:
        """Return the peer ids of all live overlay nodes (unordered)."""
        return list(self._nodes_by_peer)

    def node_for_peer(self, peer_id: PeerId) -> OverlayNode:
        """Return the overlay node owned by ``peer_id``."""
        try:
            return self._nodes_by_peer[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(peer_id) from exc

    def join(self, peer_id: PeerId) -> OverlayNode:
        """Add ``peer_id``'s node to the ring and wire its neighbours."""
        if peer_id in self._nodes_by_peer:
            return self._nodes_by_peer[peer_id]
        node = OverlayNode(peer_id=peer_id)
        # Handle the (astronomically unlikely) key collision by linear probing.
        while node.key in self._nodes_by_key:
            node.key = (node.key + 1) % (1 << KEY_SPACE_BITS)
        self._nodes_by_key[node.key] = node
        self._nodes_by_peer[peer_id] = node
        insort(self._sorted_keys, node.key)
        self._rewire_neighbours()
        return node

    def leave(self, peer_id: PeerId) -> OverlayNode:
        """Remove ``peer_id``'s node from the ring and return it."""
        node = self.node_for_peer(peer_id)
        del self._nodes_by_peer[peer_id]
        del self._nodes_by_key[node.key]
        index = bisect_left(self._sorted_keys, node.key)
        if index < len(self._sorted_keys) and self._sorted_keys[index] == node.key:
            self._sorted_keys.pop(index)
        node.clear_routing_state()
        self._rewire_neighbours()
        return node

    # ------------------------------------------------------------------ #
    # Responsibility                                                       #
    # ------------------------------------------------------------------ #
    def successor_of(self, key: int) -> OverlayNode:
        """Return the node responsible for ``key`` (its clockwise successor)."""
        if not self._sorted_keys:
            raise UnknownPeerError(-1)
        index = bisect_left(self._sorted_keys, key % (1 << KEY_SPACE_BITS))
        if index == len(self._sorted_keys):
            index = 0
        return self._nodes_by_key[self._sorted_keys[index]]

    def successors_of(self, key: int, count: int) -> list[OverlayNode]:
        """Return up to ``count`` distinct nodes clockwise from ``key``."""
        if not self._sorted_keys:
            return []
        count = min(count, len(self._sorted_keys))
        start = bisect_left(self._sorted_keys, key % (1 << KEY_SPACE_BITS))
        result = []
        for offset in range(count):
            ring_key = self._sorted_keys[(start + offset) % len(self._sorted_keys)]
            result.append(self._nodes_by_key[ring_key])
        return result

    def responsible_peer(self, key: int) -> PeerId:
        """Peer id of the node responsible for ``key``."""
        return self.successor_of(key).peer_id

    # ------------------------------------------------------------------ #
    # Finger tables                                                        #
    # ------------------------------------------------------------------ #
    def build_fingers(self, peer_id: PeerId) -> None:
        """(Re)build the full finger table of ``peer_id``'s node."""
        node = self.node_for_peer(peer_id)
        node.fingers = [
            self.successor_of(node.finger_start(i)).key for i in range(KEY_SPACE_BITS)
        ]

    def closest_preceding_key(self, from_key: int, target: int) -> int | None:
        """Finger-table step: the known key closest to (but before) ``target``.

        Returns ``None`` when no finger precedes the target, in which case the
        lookup falls through to the successor pointer.
        """
        node = self._nodes_by_key.get(from_key)
        if node is None or not node.fingers:
            return None
        for finger_key in reversed(node.fingers):
            if finger_key in self._nodes_by_key and in_interval(
                finger_key, from_key, target, inclusive_right=False
            ):
                return finger_key
        return None

    # ------------------------------------------------------------------ #
    # Internal                                                             #
    # ------------------------------------------------------------------ #
    def _rewire_neighbours(self) -> None:
        """Refresh successor/predecessor pointers after a membership change."""
        keys = self._sorted_keys
        total = len(keys)
        for index, key in enumerate(keys):
            node = self._nodes_by_key[key]
            node.successor = keys[(index + 1) % total]
            node.predecessor = keys[(index - 1) % total]
