"""Structured description of one overlay membership change.

Chord's own analysis (and §3 of the paper, which inherits it) is that a
single join or leave only moves responsibility for the arc between the
affected node and its predecessor: when a node with key ``k`` joins, it takes
the arc ``(predecessor_key, k]`` from its successor; when it leaves, the same
arc is handed back.  :class:`MembershipChange` captures exactly that — which
peer moved, where its node sat on the identifier circle, and the arc whose
responsibility changed hands — so downstream caches (the reputation store's
score-manager assignments) can invalidate *only* the entries the change can
possibly affect instead of being blanket-cleared.

The record is produced by :meth:`repro.overlay.ring.ChordRing.join` /
``leave`` (exposed as :attr:`~repro.overlay.ring.ChordRing.last_change`) and
consumed by any reputation backend implementing ``membership_changed``; see
:func:`repro.reputation.backend.notify_membership_change` for the dispatch
with the full-invalidation fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ids import PeerId
from .hashing import in_interval

__all__ = ["MembershipKind", "MembershipChange"]


class MembershipKind(str, Enum):
    """Direction of a membership change."""

    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class MembershipChange:
    """One node joining or leaving the ring, with the arc that changed hands.

    Attributes
    ----------
    kind:
        Whether the node joined or left.
    peer_id:
        The simulator-level peer whose overlay node moved.
    node_key:
        The node's position on the identifier circle.
    predecessor_key:
        Key of the node's ring predecessor (at the moment of the change); the
        arc ``(predecessor_key, node_key]`` is what moved between the node
        and its successor.  Equals ``node_key`` on a single-node ring.
    successor_key:
        Key of the node's ring successor at the moment of the change.  For a
        join this is the node that *lost* the arc; for a leave, the node that
        inherited it.  Equals ``node_key`` on a single-node ring.
    ring_size:
        Number of live nodes *after* the change was applied.
    """

    kind: MembershipKind
    peer_id: PeerId
    node_key: int
    predecessor_key: int
    successor_key: int
    ring_size: int

    @property
    def is_join(self) -> bool:
        return self.kind is MembershipKind.JOIN

    @property
    def is_leave(self) -> bool:
        return self.kind is MembershipKind.LEAVE

    def arc_contains(self, key: int) -> bool:
        """Whether ``key`` lies in the changed arc ``(predecessor_key, node_key]``."""
        if self.predecessor_key == self.node_key:
            return True  # single-node ring: the node owns the whole circle
        return in_interval(key, self.predecessor_key, self.node_key)
