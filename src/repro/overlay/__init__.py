"""Structured overlay (DHT) substrate.

The paper assumes "the existence of a structured overlay that uses
distributed hash tables for routing and for selecting score managers that
keep track of all feedback pertaining to a peer" (§2).  This package provides
that substrate: a Chord-style ring of overlay nodes with consistent hashing,
iterative key lookup, per-peer score-manager assignment with ``numSM``
independent replicas, and churn handling that re-assigns responsibilities
when nodes join or leave.
"""

from .hashing import ring_distance, in_interval
from .membership import MembershipChange, MembershipKind
from .node import OverlayNode
from .ring import ChordRing
from .routing import RoutingResult, lookup
from .assignment import ScoreManagerAssignment
from .churn import ChurnManager, ChurnEvent, ChurnKind

__all__ = [
    "ring_distance",
    "in_interval",
    "MembershipChange",
    "MembershipKind",
    "OverlayNode",
    "ChordRing",
    "RoutingResult",
    "lookup",
    "ScoreManagerAssignment",
    "ChurnManager",
    "ChurnEvent",
    "ChurnKind",
]
