"""The consolidated report generator.

Merges the robustness matrix, the detection evaluation and the committed
hot-path benchmark into one JSON + Markdown artifact.  Everything here is
deterministic at a fixed seed: the two experiments derive every run seed
from (sweep, point, repeat) identity, the benchmark section is *read* from
the committed ``BENCH_hotpath.json`` (never re-measured), and neither the
document nor its rendering contains a wall-clock reading — so two
invocations with the same configuration produce byte-identical bytes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..analysis.storage import _json_safe
from ..analysis.tables import format_markdown_table
from ..api.errors import UnknownNameError
from ..config import ADVERSARY_STRATEGIES, SimulationParameters

__all__ = [
    "REPORT_SECTIONS",
    "resolve_report_sections",
    "generate_report",
    "render_markdown",
    "write_report",
]

#: The sections of the consolidated report, in presentation order.
REPORT_SECTIONS: tuple[str, ...] = ("robustness", "detection", "bench")

#: Section name → the experiment that produces it (bench is file-backed).
_SECTION_EXPERIMENTS: dict[str, str] = {
    "robustness": "robustness_matrix",
    "detection": "detection_eval",
}

#: The benchmark report the repo commits at its root.
DEFAULT_BENCH_PATH = "BENCH_hotpath.json"


def resolve_report_sections(names: Sequence[str] | None) -> tuple[str, ...]:
    """Validated section names in canonical order (``None`` = all).

    Raises :class:`~repro.api.errors.UnknownNameError` — and therefore gets
    the CLI's did-you-mean + exit-code-2 treatment — for anything outside
    :data:`REPORT_SECTIONS`.
    """
    if names is None:
        return REPORT_SECTIONS
    requested = list(dict.fromkeys(names))
    for name in requested:
        if name not in REPORT_SECTIONS:
            raise UnknownNameError("report section", name, REPORT_SECTIONS)
    return tuple(section for section in REPORT_SECTIONS if section in requested)


def _resolve_grid(
    schemes: Sequence[str] | None, attacks: Sequence[str] | None
) -> dict[str, Any]:
    """Validated ``schemes``/``attacks`` constructor kwargs for the grids."""
    from ..api.catalogue import resolve_scheme

    kwargs: dict[str, Any] = {}
    if schemes is not None:
        kwargs["schemes"] = [resolve_scheme(name) for name in schemes]
    if attacks is not None:
        for name in attacks:
            if name not in ADVERSARY_STRATEGIES:
                raise UnknownNameError(
                    "adversary strategy", name, ADVERSARY_STRATEGIES
                )
        kwargs["attacks"] = list(attacks)
    return kwargs


def _bench_section(bench_path: str | Path) -> dict[str, Any]:
    """The benchmark section, read from the committed report file.

    A missing or unreadable file degrades to an ``available: false`` note —
    the consolidated report must stay generatable from a bare checkout.
    """
    path = Path(bench_path)
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return {
            "available": False,
            "path": str(path),
            "note": f"benchmark report not readable ({exc.__class__.__name__}); "
            "run `python -m repro bench --out` to regenerate it",
        }
    rows = [
        {
            "workload": entry.get("workload"),
            "arrival_rate": entry.get("arrival_rate"),
            "speedup": entry.get("speedup"),
            "tx_per_sec_before": entry.get("before", {}).get("tx_per_sec"),
            "tx_per_sec_after": entry.get("after", {}).get("tx_per_sec"),
            "bit_identical": entry.get("bit_identical"),
        }
        for entry in document.get("end_to_end", [])
    ]
    return {
        "available": True,
        "path": str(path),
        "description": document.get("description"),
        "all_bit_identical": document.get("all_bit_identical"),
        "max_end_to_end_speedup": document.get("max_end_to_end_speedup"),
        "end_to_end": rows,
    }


def generate_report(
    sections: Sequence[str] | None = None,
    *,
    service: "Any | None" = None,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 1,
    base_params: SimulationParameters | None = None,
    schemes: Sequence[str] | None = None,
    attacks: Sequence[str] | None = None,
    bench_path: str | Path = DEFAULT_BENCH_PATH,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Generate the consolidated report document.

    ``sections`` selects which of :data:`REPORT_SECTIONS` to include (all
    by default); ``schemes``/``attacks`` restrict both grid experiments to
    a sub-grid (the CI smoke runs rocq + tit_for_tat under whitewash_waves
    only); ``service`` reuses an existing
    :class:`~repro.api.service.SimulationService` (its worker pool and run
    cache), otherwise a throwaway serial service is used.  The experiment
    sections embed each result's full ``to_dict()`` document, so the JSON
    artifact is a superset of what ``--out`` of the experiment CLI stores.
    """
    selected = resolve_report_sections(sections)
    grid_kwargs = _resolve_grid(schemes, attacks)
    experiment_ids = [
        _SECTION_EXPERIMENTS[section]
        for section in selected
        if section in _SECTION_EXPERIMENTS
    ]
    document: dict[str, Any] = {
        "report": "consolidated",
        "sections": list(selected),
        "config": {
            "scale": scale,
            "repeats": repeats,
            "seed": seed,
            "schemes": list(grid_kwargs.get("schemes", [])) or None,
            "attacks": list(grid_kwargs.get("attacks", [])) or None,
            "scenario_params": (
                base_params.to_dict() if base_params is not None else None
            ),
        },
    }
    results: dict[str, Any] = {}
    if experiment_ids:
        from ..api.service import SimulationService

        owned = service is None
        active = service if service is not None else SimulationService()
        try:
            results = active.run_experiments(
                scale=scale,
                repeats=repeats,
                seed=seed,
                only=experiment_ids,
                progress=progress,
                base_params=base_params,
                experiment_kwargs={
                    experiment_id: grid_kwargs for experiment_id in experiment_ids
                },
            )
        finally:
            if owned:
                active.close()
    for section in selected:
        if section == "bench":
            document["bench"] = _bench_section(bench_path)
        else:
            document[section] = results[_SECTION_EXPERIMENTS[section]].to_dict()
    check_rows = [
        {
            "experiment": _SECTION_EXPERIMENTS[section],
            "check": check["name"],
            "passed": check["passed"],
            "detail": check["detail"],
        }
        for section in selected
        if section in _SECTION_EXPERIMENTS
        for check in document[section]["checks"]
    ]
    document["checks"] = {
        "passed": sum(1 for row in check_rows if row["passed"]),
        "total": len(check_rows),
        "failed": [row["check"] for row in check_rows if not row["passed"]],
        "rows": check_rows,
    }
    return document


def _format_value(value: Any) -> Any:
    if isinstance(value, float):
        return f"{value:.4g}"
    return value


def _experiment_markdown(lines: list[str], payload: Mapping[str, Any]) -> None:
    """Append one experiment section: notes, scalars, series, checks."""
    for note in payload.get("notes", []):
        lines.append(f"*{note}*")
    if payload.get("notes"):
        lines.append("")
    scalars = payload.get("scalars", {})
    if scalars:
        lines.append(
            format_markdown_table(
                ["quantity", "value"],
                [[name, _format_value(value)] for name, value in scalars.items()],
            )
        )
        lines.append("")
    series = payload.get("series", {})
    if series:
        ticks = payload.get("x_ticks", {})
        xs = sorted({x for points in series.values() for x, _ in points})
        headers = [payload.get("x_label", "x"), *series]
        rows = []
        for x in xs:
            lookup = {
                name: {px: py for px, py in points} for name, points in series.items()
            }
            rows.append(
                [ticks.get(str(x), x)]
                + [_format_value(lookup[name].get(x, float("nan"))) for name in series]
            )
        lines.append(format_markdown_table(headers, rows))
        lines.append("")
    checks = payload.get("checks", [])
    if checks:
        lines.append(
            format_markdown_table(
                ["shape check", "status", "detail"],
                [
                    [
                        check["name"],
                        "PASS" if check["passed"] else "FAIL",
                        check["detail"],
                    ]
                    for check in checks
                ],
            )
        )
        lines.append("")


def render_markdown(document: Mapping[str, Any]) -> str:
    """Render the consolidated document as Markdown."""
    config = document["config"]
    lines = ["# Consolidated report", ""]
    lines.append(
        format_markdown_table(
            ["setting", "value"],
            [
                ["sections", ", ".join(document["sections"])],
                ["scale", _format_value(config["scale"])],
                ["repeats", config["repeats"]],
                ["seed", config["seed"]],
                ["schemes", ", ".join(config["schemes"] or []) or "(all)"],
                ["attacks", ", ".join(config["attacks"] or []) or "(all)"],
            ],
        )
    )
    lines.append("")
    checks = document.get("checks")
    if checks is not None and checks["total"]:
        status = "all passed" if not checks["failed"] else (
            f"{len(checks['failed'])} FAILED"
        )
        lines.append(
            f"## Shape checks — {checks['passed']}/{checks['total']} ({status})"
        )
        lines.append("")
        lines.append(
            format_markdown_table(
                ["experiment", "shape check", "status", "detail"],
                [
                    [
                        row["experiment"],
                        row["check"],
                        "PASS" if row["passed"] else "FAIL",
                        row["detail"],
                    ]
                    for row in checks["rows"]
                ],
            )
        )
        lines.append("")
    for section in document["sections"]:
        if section == "bench":
            bench = document["bench"]
            lines.append("## Hot-path benchmark (committed report)")
            lines.append("")
            if not bench["available"]:
                lines.append(f"*{bench['note']}*")
                lines.append("")
                continue
            lines.append(f"*{bench['description']}*")
            lines.append("")
            lines.append(
                format_markdown_table(
                    ["quantity", "value"],
                    [
                        ["max end-to-end speedup", bench["max_end_to_end_speedup"]],
                        ["all runs bit-identical", bench["all_bit_identical"]],
                    ],
                )
            )
            lines.append("")
            if bench["end_to_end"]:
                lines.append(
                    format_markdown_table(
                        [
                            "workload",
                            "arrival rate",
                            "speedup",
                            "tx/s before",
                            "tx/s after",
                            "bit identical",
                        ],
                        [
                            [
                                row["workload"],
                                row["arrival_rate"],
                                row["speedup"],
                                _format_value(row["tx_per_sec_before"]),
                                _format_value(row["tx_per_sec_after"]),
                                row["bit_identical"],
                            ]
                            for row in bench["end_to_end"]
                        ],
                    )
                )
                lines.append("")
        else:
            payload = document[section]
            lines.append(
                f"## {payload['experiment_id']} — {payload['title']}"
            )
            lines.append("")
            _experiment_markdown(lines, payload)
    return "\n".join(lines).rstrip() + "\n"


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` atomically (temp file + rename, like ResultStore)."""
    temp_path = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        temp_path.write_text(text, encoding="utf-8")
        os.replace(temp_path, path)
    finally:
        temp_path.unlink(missing_ok=True)


def render_json(document: Mapping[str, Any]) -> str:
    """The document as standard JSON: sorted keys, NaN sanitised to null.

    Sorted keys plus the :func:`repro.analysis.storage._json_safe`
    sanitisation (bare ``NaN`` tokens are not JSON) make the bytes a pure
    function of the document — the property the determinism test pins.
    """
    return (
        json.dumps(_json_safe(dict(document)), indent=2, sort_keys=True) + "\n"
    )


def write_report(
    document: Mapping[str, Any], out_dir: str | Path
) -> tuple[Path, Path]:
    """Write ``report.json`` and ``report.md`` under ``out_dir``.

    Writes are atomic (temp file + rename) and the JSON is serialised with
    sorted keys so the artifact diffs — and hashes — stably.  Returns
    ``(json_path, markdown_path)``.
    """
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "report.json"
    markdown_path = directory / "report.md"
    _atomic_write_text(json_path, render_json(document))
    _atomic_write_text(markdown_path, render_markdown(document))
    return json_path, markdown_path
