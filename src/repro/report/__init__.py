"""Consolidated cross-run reporting.

One command — ``python -m repro report`` — or one HTTP call — ``GET
/report`` on :mod:`repro.api.server` — merges the three evidence streams
the reproduction produces into a single artifact:

* the **robustness matrix** (what each attack bought under each scheme),
* the **detection evaluation** (how well each scheme ranked the attackers
  and how calibrated its scores are), and
* the committed **hot-path benchmark** report (what the reproduction costs
  to run and that the optimised core is bit-identical to the seed).

:func:`~repro.report.consolidated.generate_report` returns the merged JSON
document, :func:`~repro.report.consolidated.render_markdown` renders it as
Markdown, and :func:`~repro.report.consolidated.write_report` persists
both.  The document is deterministic byte-for-byte at a fixed seed: it
contains no wall-clock readings, experiment results are seed-derived, and
the benchmark section is read from the committed ``BENCH_hotpath.json``
rather than re-measured.
"""

from .consolidated import (
    REPORT_SECTIONS,
    generate_report,
    render_json,
    render_markdown,
    resolve_report_sections,
    write_report,
)

__all__ = [
    "REPORT_SECTIONS",
    "resolve_report_sections",
    "generate_report",
    "render_json",
    "render_markdown",
    "write_report",
]
