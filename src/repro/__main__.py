"""``python -m repro`` — the consolidated command-line front door.

See :mod:`repro.cli` for the subcommands (``run``, ``experiment``,
``bench``, ``catalogue``) and :mod:`repro.api` for the service layer they
sit on.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
