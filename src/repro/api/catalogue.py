"""The unified catalogue: every registry of the library behind one lookup.

The reproduction grew four registries — reputation schemes
(:mod:`repro.reputation.backend`), workload scenarios
(:mod:`repro.workloads.registry`), adversary strategies
(:mod:`repro.adversary`) and experiments
(:data:`repro.experiments.runner.EXPERIMENTS`).  :func:`catalogue` exposes
them as one ``section → {name: description}`` mapping (what ``python -m
repro catalogue`` prints), and the ``resolve_*`` helpers turn names into
validated objects, raising :class:`~repro.api.errors.UnknownNameError` with
a did-you-mean hint on anything the registries cannot resolve.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..adversary import available_adversaries
from ..config import (
    ADVERSARY_STRATEGIES,
    REPUTATION_SCHEMES,
    AdversarySpec,
    SimulationParameters,
    parse_adversary_name,
    parse_reputation_scheme,
)
from ..errors import ConfigurationError
from ..reputation.backend import scheme_catalogue
from ..workloads.registry import available_scenarios, get_scenario
from .errors import UnknownNameError

__all__ = [
    "CATALOGUE_SECTIONS",
    "catalogue",
    "experiment_catalogue",
    "fuzz_generator_catalogue",
    "resolve_scenario",
    "resolve_scheme",
    "resolve_adversary",
    "resolve_experiment_ids",
    "resolve_trace",
]

#: The sections :func:`catalogue` reports, in presentation order.
CATALOGUE_SECTIONS = (
    "schemes",
    "scenarios",
    "adversaries",
    "experiments",
    "fuzz-generators",
)


def experiment_catalogue() -> dict[str, str]:
    """Experiment id → title for every registered experiment."""
    # Imported lazily: the experiments package pulls in every figure module,
    # which the catalogue's other sections do not need.
    from ..experiments.runner import EXPERIMENTS

    return {
        experiment_id: (cls.title or experiment_id)
        for experiment_id, cls in EXPERIMENTS.items()
    }


def catalogue() -> dict[str, dict[str, str]]:
    """Every registry as ``section → {name: description}``.

    Sections are :data:`CATALOGUE_SECTIONS`; entries within a section are in
    registry order (callers that need stable text output sort by name).
    """
    return {
        "schemes": scheme_catalogue(),
        "scenarios": available_scenarios(),
        "adversaries": available_adversaries(),
        "experiments": experiment_catalogue(),
        "fuzz-generators": fuzz_generator_catalogue(),
    }


def fuzz_generator_catalogue() -> dict[str, str]:
    """Fuzz generator name → description (the scenario fuzzer's dimensions)."""
    # Imported lazily, mirroring experiment_catalogue: the fuzzer pulls in
    # the whole engine stack.
    from ..workloads.fuzz import available_fuzz_generators

    return available_fuzz_generators()


def resolve_scenario(name: str, seed: int = 1) -> SimulationParameters:
    """Parameters of the scenario registered under ``name``."""
    known = available_scenarios()
    if name not in known:
        raise UnknownNameError("scenario", name, known)
    return get_scenario(name, seed=seed)


def resolve_scheme(name: str) -> str:
    """Canonical scheme name for ``name`` (aliases accepted)."""
    try:
        return parse_reputation_scheme(name)
    except ConfigurationError:
        raise UnknownNameError("reputation scheme", name, REPUTATION_SCHEMES) from None


def resolve_adversary(
    value: "AdversarySpec | str | Mapping[str, Any] | None",
) -> AdversarySpec | None:
    """Coerce ``value`` into a validated :class:`AdversarySpec`.

    Accepts everything :meth:`AdversarySpec.parse` does; an unknown strategy
    name is upgraded to :class:`UnknownNameError` so the CLI's did-you-mean
    behaviour is uniform across all registries.  Every other validation
    failure (bad counts, malformed options, ...) propagates unchanged.
    """
    if value is None or isinstance(value, AdversarySpec):
        return value
    if isinstance(value, str):
        attempted = value
    elif isinstance(value, Mapping):
        attempted = value.get("name", "sybil_swarm")
    else:
        attempted = None
    if attempted is not None:
        try:
            parse_adversary_name(attempted)
        except ConfigurationError:
            raise UnknownNameError(
                "adversary strategy", attempted, ADVERSARY_STRATEGIES
            ) from None
    return AdversarySpec.parse(value)


def resolve_trace(path: str) -> "Any":
    """Load the trace file at ``path``, with did-you-mean on missing files.

    Returns a :class:`~repro.trace.log.TraceLog`; a missing file raises
    :class:`UnknownNameError` listing trace-looking siblings (so ``repro
    trace diff runs/baseline.jsonl ...`` typos behave like unknown scheme
    names), and malformed files raise
    :class:`~repro.trace.log.TraceFormatError` (a
    :class:`~repro.errors.ConfigurationError`).
    """
    from pathlib import Path

    from ..trace.log import TraceLog

    try:
        return TraceLog.load(path)
    except FileNotFoundError:
        directory = Path(path).parent
        siblings = (
            sorted(str(candidate) for candidate in directory.glob("*.jsonl"))
            if directory.is_dir()
            else []
        )
        raise UnknownNameError("trace", str(path), siblings) from None


def resolve_experiment_ids(ids: Iterable[str]) -> list[str]:
    """Deduplicated experiment ids, each validated against the registry."""
    known = experiment_catalogue()
    selected = list(dict.fromkeys(ids))
    for experiment_id in selected:
        if experiment_id not in known:
            raise UnknownNameError("experiment", experiment_id, known)
    return selected
