"""repro.api — the typed public facade over the whole reproduction.

One front door for everything the library can execute:

* :class:`RunRequest` — a validated, JSON-round-trippable description of a
  simulation (scenario + scheme + adversary + overrides + seed/repeats);
* :class:`SimulationService` — owns executor selection, the run cache and
  the unified :func:`catalogue`; runs requests, batches, sweeps, the full
  experiment suite and the benchmark suite;
* :class:`RunHandle` — asynchronous submission with progress events and
  cooperative cancellation;
* :class:`RunResult` / :class:`BatchResult` — results with wall-clock-free
  digests (the golden-test currency);
* :class:`ReputationServer` / :func:`serve` — the long-lived JSON-over-HTTP
  service (``python -m repro serve``) binding the simulation service to a
  durable reputation store (:mod:`repro.storage`).

Quickstart::

    from repro.api import RunRequest, SimulationService

    request = RunRequest(scenario="tiny_test", scheme="rocq", seed=7)
    with SimulationService(jobs=4) as service:
        result = service.run(request)
    print(f"{result.summary.success_rate:.2%}")

The command-line face of this module is ``python -m repro`` (see
:mod:`repro.cli`); the legacy ``python -m repro.experiments.runner`` and
``python -m repro.bench`` entry points delegate here.
"""

from ..trace.spec import TraceSpec
from .catalogue import (
    CATALOGUE_SECTIONS,
    catalogue,
    experiment_catalogue,
    fuzz_generator_catalogue,
    resolve_adversary,
    resolve_experiment_ids,
    resolve_scenario,
    resolve_scheme,
    resolve_trace,
)
from .errors import RunCancelledError, UnknownNameError, did_you_mean
from .handle import ProgressEvent, RunHandle
from .request import RunRequest
from .results import BatchResult, RunResult, summary_digest
from .server import ReputationServer, serve
from .service import SimulationService

__all__ = [
    "RunRequest",
    "RunResult",
    "BatchResult",
    "RunHandle",
    "ProgressEvent",
    "SimulationService",
    "ReputationServer",
    "serve",
    "TraceSpec",
    "catalogue",
    "CATALOGUE_SECTIONS",
    "experiment_catalogue",
    "fuzz_generator_catalogue",
    "resolve_scenario",
    "resolve_scheme",
    "resolve_adversary",
    "resolve_experiment_ids",
    "resolve_trace",
    "summary_digest",
    "UnknownNameError",
    "RunCancelledError",
    "did_you_mean",
]
