""":class:`RunHandle` — the asynchronous view of a submitted request.

:meth:`SimulationService.submit` returns a handle immediately; the request
runs on a background thread against the service's executor.  The handle
exposes progress (one :class:`ProgressEvent` per completed repeat, cache hits
included), cooperative cancellation, and result retrieval.

Cancellation is cooperative at repeat granularity: :meth:`RunHandle.cancel`
raises :class:`~repro.api.errors.RunCancelledError` out of the next progress
callback, which aborts the batch (pooled executors cancel their still-queued
work; already-running simulations finish but are discarded).  Because each
repeat's seed is derived from its identity — never from execution order —
the *events* a handle reports are the same set on every backend, and an
uncancelled handle's result is bit-identical to the synchronous path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .errors import RunCancelledError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .request import RunRequest
    from .results import RunResult

__all__ = ["ProgressEvent", "RunHandle"]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed simulation repeat of a submitted request.

    ``completed``/``total`` count repeats done so far; completion *order* may
    vary across backends, but the set of (label, repeat, seed) triples is
    backend-invariant.
    """

    label: str
    repeat: int
    seed: int
    completed: int
    total: int


class RunHandle:
    """Progress, cancellation and result retrieval for one submitted request.

    Instances are created by :meth:`SimulationService.submit`; the
    constructor is internal.  ``on_event`` (if given) is invoked synchronously
    from the worker thread for every progress event — it must be cheap and
    thread-safe.
    """

    def __init__(
        self,
        request: "RunRequest",
        runner: "Callable[[RunHandle], RunResult]",
        on_event: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        self.request = request
        self._runner = runner
        self._on_event = on_event
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._events: list[ProgressEvent] = []
        self._result: "RunResult | None" = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"repro-run-{request.run_label()}", daemon=True
        )

    # ------------------------------------------------------------------ #
    # Internal: driven by the service                                      #
    # ------------------------------------------------------------------ #
    def _start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        try:
            self._result = self._runner(self)
        except BaseException as exc:  # noqa: BLE001 - re-raised in result()
            self._error = exc

    def _record(self, event: ProgressEvent) -> None:
        """Record one completed repeat; raises if cancellation was requested."""
        with self._lock:
            self._events.append(event)
        if self._on_event is not None:
            self._on_event(event)
        self._check_cancelled()

    def _check_cancelled(self) -> None:
        if self._cancel.is_set():
            raise RunCancelledError(
                f"run {self.request.run_label()!r} cancelled via its handle"
            )

    # ------------------------------------------------------------------ #
    # Public surface                                                       #
    # ------------------------------------------------------------------ #
    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, returns at once)."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancel.is_set()

    def done(self) -> bool:
        """Whether the background run has finished (any outcome)."""
        return not self._thread.is_alive()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the run finishes; ``True`` if it did within timeout."""
        self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def cancelled(self) -> bool:
        """Whether the run ended because it was cancelled."""
        return isinstance(self._error, RunCancelledError)

    def progress(self) -> list[ProgressEvent]:
        """Snapshot of the events recorded so far (completion order)."""
        with self._lock:
            return list(self._events)

    def result(self, timeout: float | None = None) -> "RunResult":
        """The run's result; blocks until done.

        Raises :class:`RunCancelledError` if the handle was cancelled,
        ``TimeoutError`` if the run is still going after ``timeout`` seconds,
        and re-raises whatever error the run itself died on.
        """
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"run {self.request.run_label()!r} still executing")
        if self._error is not None:
            raise self._error
        assert self._result is not None  # _run set exactly one of the two
        return self._result
