"""Errors raised by the public API layer.

Both errors stay inside the library's existing hierarchy
(:class:`~repro.errors.ReproError`), so callers that already catch library
errors keep working; :class:`UnknownNameError` additionally carries enough
structure (kind, offending name, known names, closest match) for the CLI to
render a consistent did-you-mean message and exit with code 2.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Iterable

from ..errors import ConfigurationError, ReproError

__all__ = ["UnknownNameError", "RunCancelledError", "did_you_mean"]


def did_you_mean(name: object, known: Iterable[str]) -> str | None:
    """The registry entry closest to ``name``, or ``None`` when nothing is."""
    matches = get_close_matches(str(name), [str(k) for k in known], n=1, cutoff=0.5)
    return matches[0] if matches else None


class UnknownNameError(ConfigurationError):
    """A name failed to resolve against the registry that should know it.

    Attributes
    ----------
    kind:
        What was being looked up (``"scenario"``, ``"reputation scheme"``,
        ``"adversary strategy"``, ``"experiment"``, ...).
    name:
        The name that failed to resolve.
    known:
        The sorted names the registry does know.
    hint:
        The closest known name, or ``None`` when nothing is close.
    """

    def __init__(self, kind: str, name: object, known: Iterable[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = tuple(sorted(str(k) for k in known))
        self.hint = did_you_mean(name, self.known)
        message = f"unknown {kind} {name!r}"
        if self.hint is not None:
            message += f"; did you mean {self.hint!r}?"
        message += f" (known: {', '.join(self.known)})"
        super().__init__(message)


class RunCancelledError(ReproError):
    """The run was cancelled through its handle before every repeat finished."""
