""":class:`RunRequest` — the typed unit of work the service accepts.

A request names *what* to simulate entirely through registries and scalar
knobs: a scenario (base parameters), an optional reputation scheme, an
optional adversary, a mapping of parameter overrides, a horizon scale, and
the (seed, repeats) identity.  Construction validates every part against the
corresponding registry — an invalid request cannot exist — and the whole
object round-trips through JSON, which is what lets callers submit work over
any transport that carries text.

Determinism contract: repeat 0 runs with ``seed`` itself, so a one-repeat
request is bit-identical to calling :func:`repro.sim.engine.run_simulation`
on the resolved parameters directly (the legacy example path); later repeats
derive their seeds from (seed, ``api.run``, label, repeat index) exactly like
the sweep machinery, so results never depend on executor backend or job
count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from enum import Enum
from typing import Any, Iterable, Mapping

from pathlib import Path

from ..config import AdversarySpec, SimulationParameters
from ..errors import ConfigurationError
from ..parallel.specs import RunSpec
from ..rng import derive_seed
from ..storage.spec import PersistSpec
from ..trace.log import TraceHeader, load_trace_header, trace_file_digest
from ..trace.spec import TraceSpec
from ..workloads.registry import available_scenarios, get_scenario
from .catalogue import resolve_adversary, resolve_scheme
from .errors import UnknownNameError

__all__ = ["RunRequest"]

#: Sweep tag folded into the seeds of repeats past the first, namespacing
#: them away from every experiment sweep.
_SEED_NAMESPACE = "api.run"

#: Parameter fields a request sets through dedicated fields, not overrides.
_RESERVED_OVERRIDES = {
    "seed": "seed",
    "reputation_scheme": "scheme",
    "adversary": "adversary",
}

_PARAMETER_FIELDS = frozenset(f.name for f in fields(SimulationParameters))


def _sibling_traces(path: str) -> list[str]:
    """Trace-looking files next to a missing trace path (did-you-mean pool)."""
    directory = Path(path).parent
    if not directory.is_dir():
        return []
    return sorted(str(candidate) for candidate in directory.glob("*.jsonl"))


def _canonical_value(key: str, value: Any) -> Any:
    """A JSON-scalar form of an override value (enums collapse to .value)."""
    if isinstance(value, Enum):
        return value.value
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"override {key!r} must be a JSON scalar, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class RunRequest:
    """One validated, JSON-round-trippable simulation request.

    Attributes
    ----------
    scenario:
        Name from the scenario registry providing the base parameters, or
        ``None`` for the paper's Table 1 defaults.
    scheme:
        Reputation scheme overriding the scenario's choice (aliases such as
        ``tft`` are canonicalised), or ``None`` to keep it.
    adversary:
        Adversary workload — an :class:`AdversarySpec`, a bare strategy name,
        or a mapping as produced by :meth:`AdversarySpec.to_dict`.
    overrides:
        Extra :class:`SimulationParameters` fields to replace, canonicalised
        to a sorted tuple of ``(name, value)`` pairs; accepts a mapping.
        ``seed`` / ``reputation_scheme`` / ``adversary`` are rejected here —
        they have dedicated request fields.
    scale:
        Horizon scaling applied after everything else (see
        :meth:`SimulationParameters.scaled`).
    seed:
        Master seed; repeat 0 runs with it verbatim.
    repeats:
        Independent repetitions (each with its own derived seed).
    label:
        Optional human-readable tag used in progress lines and derived seeds;
        defaults to the scenario name (or ``"run"``).
    trace:
        Optional trace facet — a :class:`~repro.trace.spec.TraceSpec` or a
        mapping like ``{"record": path}`` / ``{"replay": path}``.  Recording
        captures the run's event trace to the path; replaying takes its base
        parameters (and master seed) from the recorded trace, with ``scheme``
        / ``adversary`` / ``overrides`` / ``scale`` applied on top for A/B
        replays, so ``scenario`` must be ``None``.
    shards:
        Number of ring arcs the sharded engine partitions each run into
        (``1`` = plain serial engine).  An *execution* knob like the
        service's job count: results are bit-identical for every value, so
        it is excluded from :meth:`fingerprint` and sharded runs bypass the
        run cache.
    epoch_length:
        Sharded engine's epoch window in transaction steps (``None`` uses
        the engine default); only meaningful with ``shards > 1``.
    persist:
        Optional persistence facet — a
        :class:`~repro.storage.spec.PersistSpec`, a bare store URL/path, or
        a mapping like ``{"store": "sqlite://rep.db", "key": "...",
        "resume": true}``.  The run's backend state is checkpointed into
        the store on finalize (and restored first when ``resume``).  An
        execution *side-effect*, not part of the run's identity: excluded
        from :meth:`fingerprint` like ``shards``, and persisted runs bypass
        the run cache (a cache hit would skip the state write).  Requires
        ``repeats == 1``, no trace facet and ``shards == 1``.
    """

    scenario: str | None = None
    scheme: str | None = None
    adversary: AdversarySpec | None = None
    overrides: tuple[tuple[str, Any], ...] = ()
    scale: float = 1.0
    seed: int = 1
    repeats: int = 1
    label: str = ""
    trace: TraceSpec | None = None
    shards: int = 1
    epoch_length: int | None = None
    persist: PersistSpec | None = None

    def __post_init__(self) -> None:
        if self.scenario is not None:
            known = available_scenarios()
            if self.scenario not in known:
                raise UnknownNameError("scenario", self.scenario, known)
        if self.scheme is not None:
            object.__setattr__(self, "scheme", resolve_scheme(self.scheme))
        object.__setattr__(self, "adversary", resolve_adversary(self.adversary))
        object.__setattr__(self, "overrides", self._canonical_overrides())
        if self.scale <= 0:
            raise ConfigurationError("scale must be > 0")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "shards", int(self.shards))
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.epoch_length is not None:
            object.__setattr__(self, "epoch_length", int(self.epoch_length))
            if self.epoch_length < 1:
                raise ConfigurationError("epoch_length must be >= 1")
        object.__setattr__(self, "trace", TraceSpec.parse(self.trace))
        self._validate_trace()
        object.__setattr__(self, "persist", PersistSpec.parse(self.persist))
        self._validate_persist()
        # Fail fast: override *values* must produce valid parameters too.
        self.resolve()

    def _validate_trace(self) -> None:
        if self.trace is None:
            return
        if self.trace.mode == "record" or self.trace.record_to is not None:
            if self.repeats != 1:
                raise ConfigurationError(
                    "trace recording requires repeats == 1: a trace file "
                    "holds exactly one run"
                )
        if self.trace.mode == "replay":
            if self.scenario is not None:
                raise ConfigurationError(
                    "a replay request takes its base parameters from the "
                    "recorded trace; drop 'scenario' and express deltas via "
                    "scheme/adversary/overrides/scale"
                )
            # Validates existence and format up front (invalid requests
            # cannot exist); the header is cached for resolve()/seeds().
            self._trace_header()

    def _validate_persist(self) -> None:
        if self.persist is None:
            return
        if self.repeats != 1:
            raise ConfigurationError(
                "persistence requires repeats == 1: a snapshot key holds "
                "exactly one backend state, and later repeats would "
                "silently overwrite earlier ones"
            )
        if self.trace is not None:
            raise ConfigurationError(
                "persistence cannot be combined with a trace facet; run "
                "them as separate requests"
            )
        if self.shards > 1:
            raise ConfigurationError(
                "persistence requires shards == 1: the sharded engine "
                "discards its per-shard backends after the merge"
            )

    def _trace_header(self) -> TraceHeader:
        """The replayed trace's header, loaded once and cached."""
        assert self.trace is not None
        cached = getattr(self, "_trace_header_cache", None)
        if cached is not None:
            return cached
        try:
            header = load_trace_header(self.trace.path)
        except FileNotFoundError:
            raise UnknownNameError(
                "trace", self.trace.path, _sibling_traces(self.trace.path)
            ) from None
        object.__setattr__(self, "_trace_header_cache", header)
        return header

    def _canonical_overrides(self) -> tuple[tuple[str, Any], ...]:
        raw = self.overrides
        pairs: Iterable[tuple[Any, Any]]
        if isinstance(raw, Mapping):
            pairs = raw.items()
        else:
            pairs = tuple(raw)
        canonical: list[tuple[str, Any]] = []
        seen: set[str] = set()
        for key, value in sorted(pairs, key=lambda pair: str(pair[0])):
            key = str(key)
            if key in _RESERVED_OVERRIDES:
                raise ConfigurationError(
                    f"override {key!r} is reserved; set "
                    f"RunRequest.{_RESERVED_OVERRIDES[key]} instead"
                )
            if key not in _PARAMETER_FIELDS:
                raise UnknownNameError(
                    "simulation parameter",
                    key,
                    sorted(_PARAMETER_FIELDS - set(_RESERVED_OVERRIDES)),
                )
            if key in seen:
                raise ConfigurationError(f"duplicate override: {key!r}")
            seen.add(key)
            canonical.append((key, _canonical_value(key, value)))
        return tuple(canonical)

    # ------------------------------------------------------------------ #
    # Resolution                                                           #
    # ------------------------------------------------------------------ #
    def resolve(self) -> SimulationParameters:
        """The fully resolved parameters this request describes.

        Resolution order: scenario base → overrides → scheme → adversary →
        scale.  Scaling last matches how every legacy entry point composed
        configurations, so equal inputs give bit-equal parameters.  Replay
        requests start from the recorded trace's parameters instead of a
        scenario.
        """
        if self.trace is not None and self.trace.mode == "replay":
            params = self._trace_header().parameters()
        elif self.scenario is not None:
            params = get_scenario(self.scenario, seed=self.seed)
        else:
            params = SimulationParameters(seed=self.seed)
        if self.overrides:
            params = params.with_overrides(**dict(self.overrides))
        if self.scheme is not None:
            params = params.with_overrides(reputation_scheme=self.scheme)
        if self.adversary is not None:
            params = params.with_overrides(adversary=self.adversary)
        if self.scale != 1.0:
            params = params.scaled(self.scale)
        return params

    def run_label(self) -> str:
        """The label used in progress lines and derived seeds."""
        return self.label or self.scenario or "run"

    def _master_seed(self) -> int:
        """The seed repeat 0 runs with.

        For replay requests this is the *recorded* master seed — the whole
        point of a replay is reproducing (or A/B-ing) the recorded run, and
        only its own seed keeps the live streams bit-aligned with it.
        """
        if self.trace is not None and self.trace.mode == "replay":
            return int(self._trace_header().seed)
        return self.seed

    def seeds(self) -> tuple[int, ...]:
        """One seed per repeat; repeat 0 is the master seed itself."""
        label = self.run_label()
        master = self._master_seed()
        return tuple(
            master
            if repeat == 0
            else derive_seed(master, _SEED_NAMESPACE, label, repeat)
            for repeat in range(self.repeats)
        )

    def specs(self) -> list[RunSpec]:
        """One executable :class:`RunSpec` per repeat, in repeat order."""
        params = self.resolve()
        label = self.run_label()
        trace = self.trace
        persist = self.persist
        return [
            RunSpec(
                params=params,
                seed=seed,
                sweep=_SEED_NAMESPACE,
                label=label,
                repeat=repeat,
                total_repeats=self.repeats,
                trace_mode=None if trace is None else trace.mode,
                trace_path=None if trace is None else trace.path,
                trace_record_to=None if trace is None else trace.record_to,
                trace_digest_every=1 if trace is None else trace.digest_every,
                shards=self.shards,
                epoch_length=self.epoch_length,
                persist_path=None if persist is None else persist.store,
                persist_key=(
                    None
                    if persist is None
                    else (persist.key or f"run/{label}")
                ),
                persist_resume=False if persist is None else persist.resume,
            )
            for repeat, seed in enumerate(self.seeds())
        ]

    def fingerprint(self) -> str:
        """Stable digest identifying exactly what this request would run.

        Computed over the resolved parameters and derived seeds, so it is
        insensitive to how the request was spelled (override ordering, scheme
        aliases, scenario-vs-explicit parameters) and stable across processes
        — the natural cache key for request-level memoisation.

        ``shards``/``epoch_length`` are deliberately absent: they change how
        a run executes, never what it computes (bit-identity is pinned by
        the golden-digest tests), exactly like the service's job count.
        ``persist`` is absent for the same reason — checkpointing is a
        side-effect of execution, not part of what the run computes.
        """
        document = {"params": self.resolve().to_dict(), "seeds": list(self.seeds())}
        if self.trace is not None:
            facet = self.trace.to_dict()
            if self.trace.mode == "replay":
                # A replay's identity is the trace *content*, not its path:
                # rerecording a different run to the same file must change
                # the fingerprint.
                facet["trace_content"] = trace_file_digest(self.trace.path)
            document["trace"] = facet
        text = json.dumps(document, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # Serialisation                                                        #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (see :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "adversary": (
                self.adversary.to_dict() if self.adversary is not None else None
            ),
            "overrides": dict(self.overrides),
            "scale": self.scale,
            "seed": self.seed,
            "repeats": self.repeats,
            "label": self.label,
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "shards": self.shards,
            "epoch_length": self.epoch_length,
            "persist": self.persist.to_dict() if self.persist is not None else None,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialise the request to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRequest":
        """Build a request from a mapping, rejecting unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise UnknownNameError("request field", unknown[0], known)
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "RunRequest":
        """Build a request from a JSON document produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def with_updates(self, **changes: Any) -> "RunRequest":
        """Return a copy with the given request fields replaced."""
        return replace(self, **changes)
