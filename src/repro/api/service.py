""":class:`SimulationService` — the one front door for running simulations.

The service owns the things every entry point used to hand-wire for itself:
executor selection (``serial``/``thread``/``process`` via
:func:`repro.parallel.executor.create_executor`), the persistent
:class:`~repro.parallel.cache.RunCache`, and the unified registry
:func:`~repro.api.catalogue.catalogue`.  On top of those it offers every
workflow the repo has grown:

* :meth:`run` / :meth:`run_batch` — execute :class:`RunRequest` objects
  (the quickstart/bootstrap-policies path);
* :meth:`submit` — the same, asynchronously, returning a
  :class:`~repro.api.handle.RunHandle` with progress and cancellation;
* :meth:`sweep` — run a :class:`~repro.workloads.sweep.ParameterSweep` on
  the service's executor and cache (the introducer-economics path);
* :meth:`run_experiments` — the experiment orchestration that used to live
  in ``repro.experiments.runner.run_all`` (which is now a thin wrapper);
* :meth:`bench` — the hot-path benchmark suite (always inline: its
  before/after patching is process-global, so it never uses the executor).

Results are bit-identical to the legacy entry points for equivalent inputs,
across every backend and job count — golden-digest tests pin this.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from ..analysis.storage import ResultStore
from ..config import SimulationParameters
from ..parallel.cache import RunCache
from ..parallel.executor import Executor, create_executor, run_specs
from ..workloads.sweep import ParameterSweep, SweepResult
from .catalogue import catalogue as build_catalogue
from .handle import ProgressEvent, RunHandle
from .request import RunRequest
from .results import BatchResult, RunResult

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..experiments.base import ExperimentResult

__all__ = ["SimulationService"]

ProgressFn = Callable[[str], None]


class SimulationService:
    """A configured simulation runner: executor + run cache + catalogue.

    Parameters
    ----------
    jobs:
        Simulations to run concurrently (1 = serial).
    backend:
        Executor backend name (``serial``/``thread``/``process``); ``None``
        picks serial for ``jobs <= 1`` and process otherwise, exactly like
        the CLI's ``--jobs`` flag always has.
    cache:
        Optional persistent run cache — a :class:`RunCache` or a directory
        path one is created over.  Cached (params, seed) runs are never
        re-simulated, by any workflow the service executes.

    The service is a context manager; leaving the context releases the
    worker pool.  One service can execute any number of requests, batches,
    sweeps and experiment suites, amortising worker start-up across them.
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: str | None = None,
        cache: RunCache | Path | str | None = None,
    ) -> None:
        self._executor: Executor = create_executor(backend, jobs)
        if cache is not None and not isinstance(cache, RunCache):
            cache = RunCache(cache)
        self._cache = cache
        # The pooled backends bound concurrent work by their worker count;
        # the serial backend has no pool, so concurrently submitted handles
        # take this lock to honour its one-at-a-time budget.
        self._serial_lock: threading.Lock | None = (
            threading.Lock() if self._executor.backend == "serial" else None
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """Name of the executor backend the service runs on."""
        return self._executor.backend

    @property
    def jobs(self) -> int:
        """Concurrent simulations the executor allows."""
        return self._executor.jobs

    @property
    def cache(self) -> RunCache | None:
        """The run cache, or ``None`` when caching is off."""
        return self._cache

    def catalogue(self) -> dict[str, dict[str, str]]:
        """Every registry as ``section → {name: description}``."""
        return build_catalogue()

    # ------------------------------------------------------------------ #
    # Requests                                                             #
    # ------------------------------------------------------------------ #
    def run(
        self, request: RunRequest, progress: ProgressFn | None = None
    ) -> RunResult:
        """Execute ``request`` synchronously and return its result."""
        return self._execute(request, progress=progress)

    def run_batch(
        self,
        requests: Iterable[RunRequest],
        progress: ProgressFn | None = None,
    ) -> BatchResult:
        """Execute several requests as one executor batch.

        All repeats of all requests are submitted together, so a parallel
        backend overlaps work *across* requests — yet each result is
        bit-identical to running its request alone.
        """
        requests = tuple(requests)
        all_specs = []
        extents: list[tuple[int, int]] = []
        for request in requests:
            specs = request.specs()
            extents.append((len(all_specs), len(specs)))
            all_specs.extend(specs)
        hit_indices: set[int] = set()
        summaries = run_specs(
            all_specs,
            executor=self._executor,
            cache=self._cache,
            progress=progress,
            on_cache_hit=lambda index, summary: hit_indices.add(index),
        )
        results = []
        for request, (start, count) in zip(requests, extents):
            results.append(
                RunResult(
                    request=request,
                    params=all_specs[start].params,
                    summaries=tuple(summaries[start : start + count]),
                    backend=self.backend,
                    cache_hits=sum(
                        1 for index in range(start, start + count)
                        if index in hit_indices
                    ),
                )
            )
        return BatchResult(results=tuple(results))

    def submit(
        self,
        request: RunRequest,
        on_event: Callable[[ProgressEvent], None] | None = None,
    ) -> RunHandle:
        """Execute ``request`` on a background thread; returns at once.

        The returned :class:`RunHandle` reports one event per completed
        repeat and supports cooperative cancellation.  Handles share the
        service's executor (and worker pool), so several submissions
        interleave on the same ``jobs`` budget.
        """
        self._executor.prepare()
        handle = RunHandle(
            request,
            runner=lambda h: self._execute(request, handle=h),
            on_event=on_event,
        )
        handle._start()
        return handle

    def _execute(
        self,
        request: RunRequest,
        progress: ProgressFn | None = None,
        handle: RunHandle | None = None,
    ) -> RunResult:
        specs = request.specs()
        total = len(specs)
        on_result = None
        if handle is not None:
            handle._check_cancelled()
            lock = threading.Lock()
            completed = [0]

            def on_result(index: int, summary: Any) -> None:
                with lock:
                    completed[0] += 1
                    count = completed[0]
                spec = specs[index]
                handle._record(
                    ProgressEvent(
                        label=spec.label,
                        repeat=spec.repeat,
                        seed=spec.seed,
                        completed=count,
                        total=total,
                    )
                )

        hit_indices: set[int] = set()
        if self._serial_lock is not None:
            self._serial_lock.acquire()
        try:
            summaries = run_specs(
                specs,
                executor=self._executor,
                cache=self._cache,
                progress=progress,
                on_result=on_result,
                on_cache_hit=lambda index, summary: hit_indices.add(index),
            )
        finally:
            if self._serial_lock is not None:
                self._serial_lock.release()
        return RunResult(
            request=request,
            params=specs[0].params,
            summaries=tuple(summaries),
            backend=self.backend,
            cache_hits=len(hit_indices),
        )

    # ------------------------------------------------------------------ #
    # Sweeps and experiments                                               #
    # ------------------------------------------------------------------ #
    def sweep(
        self, sweep: ParameterSweep, progress: ProgressFn | None = None
    ) -> SweepResult:
        """Run a parameter sweep on the service's executor and run cache."""
        return sweep.run(progress=progress, executor=self._executor, cache=self._cache)

    def run_experiments(
        self,
        scale: float = 0.1,
        repeats: int = 3,
        seed: int = 1,
        only: Sequence[str] | None = None,
        store: ResultStore | None = None,
        progress: ProgressFn | None = None,
        base_params: SimulationParameters | None = None,
        throughput: bool = False,
        experiment_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "dict[str, ExperimentResult]":
        """Run the selected experiments (all by default) and validate each.

        This is the orchestration that ``repro.experiments.runner.run_all``
        has always performed — experiment instantiation, the figure4→figure5
        sweep-sharing rule, incremental persistence into ``store`` — now
        running on the service's executor and cache.  ``throughput`` reports
        each completed run's transactions/sec through ``progress`` (or
        stderr).  ``experiment_kwargs`` maps experiment ids to extra
        constructor keyword arguments (e.g. ``{"detection_eval": {"schemes":
        [...]}}`` restricts a grid experiment to a sub-grid).  The returned
        mapping preserves the requested order.
        """
        # Imported per call, not at module top: the experiments package pulls
        # in every figure module, which the service's other workflows (run,
        # sweep, bench, catalogue) do not need.
        from ..experiments import runner as _runner
        from ..experiments.base import ExperimentResult
        from ..experiments.figure4_lent_amount import Figure4LentAmount
        from ..experiments.figure5_lent_proportion import Figure5LentProportion

        selected = (
            list(_runner.EXPERIMENTS) if only is None else list(dict.fromkeys(only))
        )
        for experiment_id in selected:
            _runner.require_known(experiment_id)
        executor: Executor = self._executor
        if throughput:
            emit = progress if progress is not None else (
                lambda line: print(line, file=sys.stderr)
            )
            executor = _runner.ThroughputExecutor(executor, emit)
        completed: dict[str, ExperimentResult] = {}
        figure4_instance: Figure4LentAmount | None = None
        for experiment_id in _runner.execution_order(selected):
            experiment = _runner.make_experiment(
                experiment_id,
                scale=scale,
                repeats=repeats,
                seed=seed,
                base_params=base_params,
                executor=executor,
                cache=self._cache,
                **((experiment_kwargs or {}).get(experiment_id, {})),
            )
            if isinstance(experiment, Figure4LentAmount):
                figure4_instance = experiment
            if isinstance(experiment, Figure5LentProportion):
                if figure4_instance is not None:
                    experiment.shared_sweep = figure4_instance.sweep_result
            if progress is not None:
                progress(f"running {experiment_id} ...")
            result = experiment.run_and_validate(progress=progress)
            completed[experiment_id] = result
            if store is not None:
                store.save_json(experiment_id, result.to_dict())
        return {experiment_id: completed[experiment_id] for experiment_id in selected}

    # ------------------------------------------------------------------ #
    # Benchmarks                                                           #
    # ------------------------------------------------------------------ #
    def bench(self, config: Any | None = None) -> dict[str, Any]:
        """Run the hot-path benchmark suite and return its report document.

        ``config`` is a :class:`~repro.bench.hotpath.HotpathBenchConfig`
        (``None`` uses the committed-report defaults).  Benchmarks always run
        inline in this process — the legacy/incremental comparison patches
        process-global state, so it must never overlap other simulations.
        """
        from ..bench import hotpath

        if config is None:
            config = hotpath.HotpathBenchConfig()
        return hotpath.run_hotpath_benchmarks(config)

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the executor's worker pool (the service stays queryable)."""
        self._executor.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
