"""Result value objects returned by :class:`~repro.api.service.SimulationService`.

A :class:`RunResult` bundles the request, the parameters it resolved to and
one :class:`~repro.metrics.summary.RunSummary` per repeat; a
:class:`BatchResult` is an ordered collection of run results.  Both expose a
:meth:`digest` computed over the summaries *minus wall-clock time* — the
currency of this repo's golden tests: two execution paths are equivalent
exactly when their digests match.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..config import SimulationParameters
from ..metrics.summary import RunSummary, summary_digest
from ..workloads.sweep import aggregate_mean
from .request import RunRequest

__all__ = ["summary_digest", "RunResult", "BatchResult"]


@dataclass(frozen=True)
class RunResult:
    """Everything one executed :class:`RunRequest` produced.

    Attributes
    ----------
    request:
        The request as executed.
    params:
        The resolved parameters every repeat ran with.
    summaries:
        One summary per repeat, in repeat order (independent of backend).
    backend:
        Name of the executor backend the service used (informational).
    cache_hits:
        How many repeats were served from the run cache.
    """

    request: RunRequest
    params: SimulationParameters
    summaries: tuple[RunSummary, ...]
    backend: str = "serial"
    cache_hits: int = 0

    @property
    def summary(self) -> RunSummary:
        """The first repeat's summary (the whole result for repeats == 1)."""
        return self.summaries[0]

    def mean(self, getter: Callable[[RunSummary], float]) -> tuple[float, float]:
        """(mean, sample std) of ``getter`` across the repeats."""
        return aggregate_mean([getter(summary) for summary in self.summaries])

    def digest(self) -> str:
        """Digest over every repeat's summary, ignoring wall-clock time.

        Equal digests mean bit-identical results — the equivalence the
        golden tests assert between the service and each legacy path.
        """
        joined = "\n".join(summary_digest(summary) for summary in self.summaries)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def elapsed_seconds(self) -> float:
        """Total simulated wall-clock seconds summed across the repeats."""
        return sum(summary.elapsed_seconds for summary in self.summaries)

    def tx_per_sec(self) -> float | None:
        """Aggregate transaction throughput, or ``None`` without timing data.

        Cache hits replay stored summaries, whose elapsed time reflects the
        original run — throughput stays comparable across cached re-runs.
        """
        elapsed = self.elapsed_seconds()
        if elapsed <= 0:
            return None
        transactions = sum(
            summary.transactions_attempted for summary in self.summaries
        )
        return transactions / elapsed

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used by ``repro run --json``)."""
        throughput = self.tx_per_sec()
        return {
            "request": self.request.to_dict(),
            "params": self.params.to_dict(),
            "summaries": [summary.to_dict() for summary in self.summaries],
            "backend": self.backend,
            "cache_hits": self.cache_hits,
            "digest": self.digest(),
            "elapsed_seconds": round(self.elapsed_seconds(), 6),
            "tx_per_sec": round(throughput, 1) if throughput is not None else None,
        }


@dataclass(frozen=True)
class BatchResult:
    """Results of a batch of requests, in submission order."""

    results: tuple[RunResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> RunResult:
        return self.results[index]

    def digest(self) -> str:
        """Digest over every result's digest, in submission order."""
        joined = "\n".join(result.digest() for result in self.results)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "results": [result.to_dict() for result in self.results],
            "digest": self.digest(),
        }
