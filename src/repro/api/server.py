"""``python -m repro serve`` — a long-running reputation service.

A minimal JSON-over-HTTP server on the stdlib event loop
(:func:`asyncio.start_server`; no web framework), exposing the
:class:`~repro.api.service.SimulationService` and a durable
:class:`~repro.storage.ReputationStore` as one process:

================================  =============================================
``GET  /health``                  liveness + store/driver info
``GET  /catalogue``               every registry (schemes, scenarios, ...)
``POST /runs``                    submit a :class:`RunRequest` document;
                                  returns ``{"run": "r1", ...}`` immediately
``GET  /runs``                    all runs (live and restored from the store)
``GET  /runs/<id>``               one run's status, progress and digest
``GET  /runs/<id>/events``        NDJSON stream of progress events (one line
                                  per completed repeat, closes when done)
``GET  /reputation``              schemes with persisted peer records
``GET  /reputation/<scheme>``     every persisted peer record of a scheme
``GET  /reputation/<scheme>/<id>``  one peer's persisted reputation
``GET  /state``                   snapshot keys in the backing store
``GET  /report``                  consolidated report (robustness matrix +
                                  detection quality + committed benchmark);
                                  query params: ``sections``, ``scenario``,
                                  ``scale``, ``repeats``, ``seed``,
                                  ``schemes``, ``attacks`` (lists are
                                  comma-separated)
``POST /shutdown``                graceful shutdown (same path as SIGTERM)
================================  =============================================

Eligible submissions (``repeats == 1``, no trace facet, ``shards == 1``)
are stamped with a persistence facet keyed ``run/<run id>``, so every
finished run's backend state is checkpointed into the service's store and
its peers become queryable under ``/reputation/...`` — including after a
restart, which is the point: the store outlives the process, and graceful
shutdown (SIGTERM, SIGINT or ``POST /shutdown``) drains in-flight runs and
saves the run registry before closing, so a restarted service still lists
them.

Connections are one-request-per-connection (``Connection: close``) — the
clients this serves are ``curl``, CI pollers and test harnesses, not
browsers hammering keep-alive pools.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs

from ..errors import ConfigurationError, PersistenceError, ReproError
from ..storage import PersistSpec, ReputationStore, make_store
from .catalogue import catalogue as build_catalogue
from .errors import UnknownNameError
from .handle import ProgressEvent, RunHandle
from .request import RunRequest
from .service import SimulationService

__all__ = ["ReputationServer", "serve"]

#: Snapshot key the run registry is saved under at graceful shutdown.
REGISTRY_KEY = "service/runs"

#: Pseudo-scheme tag for the registry snapshot (it is service state, not a
#: reputation backend's).
REGISTRY_SCHEME = "_service"


@dataclass
class _RunEntry:
    """One submitted (or restored) run in the registry."""

    run_id: str
    label: str
    scheme: str
    status: str = "running"
    persisted: bool = False
    digest: str = ""
    error: str = ""
    events: list[dict[str, Any]] = field(default_factory=list)
    handle: RunHandle | None = None

    def to_document(self) -> dict[str, Any]:
        return {
            "run": self.run_id,
            "label": self.label,
            "scheme": self.scheme,
            "status": self.status,
            "persisted": self.persisted,
            "digest": self.digest,
            "error": self.error,
            "events": len(self.events),
        }


class _HttpError(Exception):
    """An error with a definite HTTP status (flows to one response site)."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.document = {"error": message, **extra}


class ReputationServer:
    """The asyncio HTTP service binding a store to a simulation service.

    Parameters
    ----------
    store_url:
        Durable-store URL (``sqlite://path``, ``memory://name``) or a bare
        sqlite path.  With the process executor backend the store must be
        file-backed — worker processes cannot see an in-memory store — so
        ``memory://`` URLs force the thread backend.
    host / port:
        Bind address; port ``0`` picks a free port (``port`` then reports
        the actual one once started).
    jobs / backend:
        Forwarded to :class:`SimulationService`.
    drain_timeout:
        Seconds graceful shutdown waits for in-flight runs before
        cancelling them.
    """

    def __init__(
        self,
        store_url: str,
        host: str = "127.0.0.1",
        port: int = 8737,
        jobs: int = 1,
        backend: str | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        self.store_url = str(store_url)
        self.host = host
        self.port = int(port)
        if backend is None and self.store_url.startswith("memory://"):
            backend = "thread" if jobs > 1 else "serial"
        self.service = SimulationService(jobs=jobs, backend=backend)
        self.store: ReputationStore = make_store(self.store_url)
        self.drain_timeout = drain_timeout
        self._runs: dict[str, _RunEntry] = {}
        self._next_run = 1
        self._lock = threading.Lock()
        self._shutdown = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Set once the socket is bound (threaded test harnesses wait on it).
        self.started = threading.Event()
        self._restore_registry()

    # ------------------------------------------------------------------ #
    # Registry persistence                                                 #
    # ------------------------------------------------------------------ #
    def _restore_registry(self) -> None:
        snapshot = self.store.load_state(REGISTRY_KEY)
        if snapshot is None:
            return
        payload = snapshot.payload
        self._next_run = int(payload.get("next_run", 1))
        for document in payload.get("runs", ()):
            entry = _RunEntry(
                run_id=str(document["run"]),
                label=str(document.get("label", "")),
                scheme=str(document.get("scheme", "")),
                status=str(document.get("status", "done")),
                persisted=bool(document.get("persisted", False)),
                digest=str(document.get("digest", "")),
                error=str(document.get("error", "")),
            )
            # A run that was still in flight when the last process died
            # never finished — its checkpoint (written on finalize) does
            # not exist, and neither does its result.
            if entry.status == "running":
                entry.status = "lost"
            self._runs[entry.run_id] = entry

    def _save_registry(self) -> None:
        with self._lock:
            documents = [entry.to_document() for entry in self._runs.values()]
            payload = {"next_run": self._next_run, "runs": documents}
        self.store.save_state(
            REGISTRY_KEY, REGISTRY_SCHEME, payload, saved_at=time.time()
        )

    # ------------------------------------------------------------------ #
    # Run lifecycle                                                        #
    # ------------------------------------------------------------------ #
    def _submit(self, body: dict[str, Any]) -> _RunEntry:
        if "persist" in body:
            raise _HttpError(
                400,
                "the service owns persistence (runs checkpoint into its "
                "store automatically); drop 'persist' from the request",
            )
        try:
            request = RunRequest.from_dict(body)
        except UnknownNameError as exc:
            raise _HttpError(
                400, str(exc), kind=exc.kind, known=list(exc.known)
            ) from exc
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc)) from exc
        with self._lock:
            run_id = f"r{self._next_run}"
            self._next_run += 1
        eligible = (
            request.trace is None and request.repeats == 1 and request.shards == 1
        )
        if eligible:
            request = request.with_updates(
                persist=PersistSpec(store=self.store_url, key=f"run/{run_id}")
            )
        entry = _RunEntry(
            run_id=run_id,
            label=request.run_label(),
            scheme=request.resolve().reputation_scheme,
            persisted=eligible,
        )

        def on_event(event: ProgressEvent) -> None:
            with self._lock:
                entry.events.append(
                    {
                        "run": run_id,
                        "label": event.label,
                        "repeat": event.repeat,
                        "seed": event.seed,
                        "completed": event.completed,
                        "total": event.total,
                    }
                )

        entry.handle = self.service.submit(request, on_event=on_event)
        with self._lock:
            self._runs[run_id] = entry
        return entry

    def _refresh(self, entry: _RunEntry) -> None:
        """Fold a finished handle's outcome into the registry entry."""
        handle = entry.handle
        if handle is None or entry.status != "running" or not handle.done():
            return
        try:
            result = handle.result(timeout=0)
        except ReproError as exc:
            with self._lock:
                entry.status = "cancelled" if handle.cancelled else "failed"
                entry.error = str(exc)
            return
        except Exception as exc:  # noqa: BLE001 - surfaced via the API
            with self._lock:
                entry.status = "failed"
                entry.error = str(exc)
            return
        with self._lock:
            entry.status = "done"
            entry.digest = result.digest()

    def _entry(self, run_id: str) -> _RunEntry:
        with self._lock:
            entry = self._runs.get(run_id)
        if entry is None:
            raise _HttpError(
                404, f"unknown run {run_id!r}", known=sorted(self._runs)
            )
        self._refresh(entry)
        return entry

    # ------------------------------------------------------------------ #
    # Consolidated report                                                  #
    # ------------------------------------------------------------------ #
    def _report(self, query: dict[str, list[str]]) -> dict[str, Any]:
        """The consolidated report document for ``GET /report``.

        Runs the grid experiments on the server's own simulation service
        (sharing its worker pool and run cache).  Blocking — the connection
        handler dispatches it through :func:`asyncio.to_thread`.
        """
        # Imported per request: the report generator pulls in the whole
        # experiments package, which no other route needs.
        from ..analysis.storage import _json_safe
        from ..report import generate_report
        from .catalogue import resolve_scenario

        def listing(name: str) -> list[str] | None:
            values = [
                item
                for raw in query.get(name, [])
                for item in raw.split(",")
                if item
            ]
            return values or None

        def number(name: str, cast: type, default: Any) -> Any:
            values = query.get(name)
            if not values:
                return default
            try:
                return cast(values[-1])
            except ValueError:
                raise _HttpError(
                    400, f"query parameter {name!r} must be "
                    f"{'an integer' if cast is int else 'a number'}, "
                    f"got {values[-1]!r}"
                ) from None

        seed = number("seed", int, 1)
        repeats = number("repeats", int, 3)
        scenario = query.get("scenario", [None])[-1]
        base_params = (
            resolve_scenario(scenario, seed=seed) if scenario else None
        )
        # Mirrors the CLI: a named scenario is already sized.
        scale = number("scale", float, 1.0 if scenario else 0.1)
        document = generate_report(
            listing("sections"),
            service=self.service,
            scale=scale,
            repeats=repeats,
            seed=seed,
            base_params=base_params,
            schemes=listing("schemes"),
            attacks=listing("attacks"),
        )
        # NaN cells (e.g. time-to-detection when nothing was detected) must
        # not reach json.dumps un-sanitised: bare NaN tokens are not JSON.
        return _json_safe(document)

    # ------------------------------------------------------------------ #
    # Request routing                                                      #
    # ------------------------------------------------------------------ #
    def _route(self, method: str, path: str, body: dict[str, Any] | None):
        parts = [part for part in path.split("/") if part]
        if method == "GET" and parts == ["health"]:
            return 200, {
                "status": "ok",
                "store": self.store_url,
                "backend": self.service.backend,
                "jobs": self.service.jobs,
                "runs": len(self._runs),
            }
        if method == "GET" and parts == ["catalogue"]:
            return 200, build_catalogue()
        if method == "POST" and parts == ["runs"]:
            if body is None:
                raise _HttpError(400, "POST /runs needs a JSON request body")
            entry = self._submit(body)
            return 202, entry.to_document()
        if method == "GET" and parts == ["runs"]:
            with self._lock:
                entries = list(self._runs.values())
            for entry in entries:
                self._refresh(entry)
            return 200, {"runs": [entry.to_document() for entry in entries]}
        if method == "GET" and len(parts) == 2 and parts[0] == "runs":
            return 200, self._entry(parts[1]).to_document()
        if method == "GET" and parts == ["reputation"]:
            return 200, {"schemes": self.store.peer_schemes()}
        if method == "GET" and len(parts) == 2 and parts[0] == "reputation":
            records = self.store.list_peers(parts[1])
            return 200, {
                "scheme": parts[1],
                "peers": [
                    {
                        "subject": record.subject,
                        "score": record.score,
                        "reports": record.reports,
                        "adjustments": record.adjustments,
                    }
                    for record in records
                ],
            }
        if method == "GET" and len(parts) == 3 and parts[0] == "reputation":
            scheme, subject_text = parts[1], parts[2]
            try:
                subject = int(subject_text)
            except ValueError:
                raise _HttpError(
                    400, f"peer id must be an integer, got {subject_text!r}"
                ) from None
            record = self.store.get_peer(scheme, subject)
            if record is None:
                raise _HttpError(
                    404, f"no persisted reputation for peer {subject} "
                    f"under scheme {scheme!r}"
                )
            return 200, {
                "scheme": scheme,
                "subject": record.subject,
                "score": record.score,
                "reports": record.reports,
                "adjustments": record.adjustments,
                "updated_at": record.updated_at,
            }
        if method == "GET" and parts == ["state"]:
            return 200, {"keys": self.store.state_keys()}
        if method == "POST" and parts == ["shutdown"]:
            self.request_shutdown()
            return 202, {"status": "shutting down"}
        raise _HttpError(404, f"no route for {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------------ #
    # HTTP plumbing                                                        #
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, query, body = await self._read_request(reader)
            if method == "GET" and path.endswith("/events"):
                parts = [part for part in path.split("/") if part]
                if len(parts) == 3 and parts[0] == "runs":
                    await self._stream_events(writer, parts[1])
                    return
            if method == "GET" and path.rstrip("/") == "/report":
                # Report generation runs whole experiment grids; keep the
                # event loop responsive while it does.
                try:
                    document = await asyncio.to_thread(
                        self._report, parse_qs(query)
                    )
                except _HttpError:
                    raise
                except UnknownNameError as exc:
                    raise _HttpError(
                        400, str(exc), kind=exc.kind, known=list(exc.known)
                    ) from exc
                except Exception as exc:  # noqa: BLE001 - must answer
                    raise _HttpError(500, f"internal error: {exc}") from exc
                await self._respond(writer, 200, document)
                return
            try:
                status, document = self._route(method, path, body)
            except _HttpError:
                raise
            except PersistenceError as exc:
                raise _HttpError(500, str(exc)) from exc
            except Exception as exc:  # noqa: BLE001 - must answer the client
                raise _HttpError(500, f"internal error: {exc}") from exc
            await self._respond(writer, status, document)
        except _HttpError as error:
            await self._respond(writer, error.status, error.document)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, Any] | None]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "malformed Content-Length") from None
        body: dict[str, Any] | None = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"request body is not JSON: {exc}") from exc
            if not isinstance(parsed, dict):
                raise _HttpError(400, "request body must be a JSON object")
            body = parsed
        path, _, query = target.partition("?")
        return method.upper(), path, query, body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, document: Any
    ) -> None:
        payload = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 500: "Internal Server Error"}
        writer.write(
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(payload)
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, run_id: str
    ) -> None:
        """NDJSON progress stream: one line per event, closes when done."""
        entry = self._entry(run_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            self._refresh(entry)
            with self._lock:
                fresh = entry.events[sent:]
                status = entry.status
            for event in fresh:
                writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
                sent += 1
            await writer.drain()
            if status != "running":
                writer.write(
                    (json.dumps({"run": run_id, "status": status},
                                sort_keys=True) + "\n").encode()
                )
                await writer.drain()
                return
            await asyncio.sleep(0.05)

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (thread- and signal-safe)."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._shutdown.set)

    async def serve_forever(self) -> None:
        """Bind, serve until shutdown is requested, then drain and persist."""
        self._loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break
        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        print(
            f"repro serve listening on http://{self.host}:{self.port} "
            f"(store={self.store_url})",
            flush=True,
        )
        self.started.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            await asyncio.to_thread(self._drain)

    def _drain(self) -> None:
        """Graceful-shutdown tail: finish runs, persist the registry, close.

        In-flight handles get ``drain_timeout`` seconds to finish (their
        finalize hook is what checkpoints backend state into the store);
        stragglers are cancelled.  The registry snapshot is written last, so
        a restarted service lists every run with its final status.
        """
        deadline = time.monotonic() + self.drain_timeout
        with self._lock:
            entries = list(self._runs.values())
        for entry in entries:
            handle = entry.handle
            if handle is None:
                continue
            if not handle.wait(timeout=max(0.0, deadline - time.monotonic())):
                handle.cancel()
                handle.wait(timeout=5.0)
            self._refresh(entry)
        self._save_registry()
        self.service.close()
        self.store.close()


def serve(
    store_url: str,
    host: str = "127.0.0.1",
    port: int = 8737,
    jobs: int = 1,
    backend: str | None = None,
) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    server = ReputationServer(
        store_url, host=host, port=port, jobs=jobs, backend=backend
    )
    asyncio.run(server.serve_forever())
