"""ROCQ reputation management (Reputation, Opinion, Credibility, Quality).

The paper builds its lending mechanism on top of ROCQ (Garg & Battiti,
DIT-04-104; Garg, Battiti & Cascella, ISADS 2005): after every transaction
both partners report an opinion about each other to the partner's *score
managers*.  A score manager aggregates incoming opinions into the subject's
reputation, weighting each report by the *credibility* of the reporter and
the *quality* (confidence) of the opinion.  Reporters whose opinions agree
with the aggregate gain credibility; reporters who consistently disagree —
for example uncooperative peers who always badmouth their partners — lose it,
which limits the damage false feedback can do.

This package re-implements that scheme from its published description:

* :mod:`~repro.rocq.opinion` — local opinion formation and quality.
* :mod:`~repro.rocq.credibility` — reporter credibility tracking.
* :mod:`~repro.rocq.score_manager` — per-manager aggregation state.
* :mod:`~repro.rocq.store` — the replicated, DHT-assigned reputation store.
* :mod:`~repro.rocq.protocol` — feedback/adjustment message types.
"""

from .opinion import LocalOpinion, OpinionBook
from .credibility import CredibilityRecord, CredibilityTable
from .protocol import FeedbackReport, ReputationAdjustment
from .score_manager import ReputationRecord, ScoreManager
from .store import ReputationStore

__all__ = [
    "LocalOpinion",
    "OpinionBook",
    "CredibilityRecord",
    "CredibilityTable",
    "FeedbackReport",
    "ReputationAdjustment",
    "ReputationRecord",
    "ScoreManager",
    "ReputationStore",
]
