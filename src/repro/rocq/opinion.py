"""Local opinion formation.

Every peer keeps a *local opinion* about each partner it has transacted with:
an exponentially-smoothed satisfaction value together with a *quality* score
expressing how much confidence the opinion deserves.  Quality grows with the
number of underlying interactions and shrinks with their variability, which
is how ROCQ lets score managers discount one-off or erratic reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ids import PeerId

__all__ = ["LocalOpinion", "OpinionBook"]


@dataclass(slots=True)
class LocalOpinion:
    """Opinion one peer holds about another.

    Attributes
    ----------
    value:
        Smoothed satisfaction in ``[0, 1]``; 1 means every interaction was
        satisfactory.
    interactions:
        Number of transactions that contributed to the opinion.
    mean / m2:
        Running mean and sum of squared deviations (Welford) of the raw
        satisfaction samples, used to derive the variance term of quality.
    """

    value: float = 0.5
    interactions: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def record(self, satisfaction: float, smoothing: float) -> None:
        """Fold one raw satisfaction sample (0 or 1, or fractional) in."""
        satisfaction = min(1.0, max(0.0, satisfaction))
        if self.interactions == 0:
            self.value = satisfaction
        else:
            self.value = (1.0 - smoothing) * self.value + smoothing * satisfaction
        self.interactions += 1
        delta = satisfaction - self.mean
        self.mean += delta / self.interactions
        self.m2 += delta * (satisfaction - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance of the raw satisfaction values."""
        if self.interactions < 2:
            return 0.0
        return self.m2 / (self.interactions - 1)

    @property
    def quality(self) -> float:
        """Confidence in the opinion, in ``[0, 1]``.

        Follows ROCQ's intent: quality increases with the number of
        interactions (saturating) and decreases with the variability of the
        observed behaviour.  A single observation already carries moderate
        confidence (0.5 of the asymptote) so fresh reports are not ignored.
        """
        interactions = self.interactions
        if interactions == 0:
            return 0.0
        count_term = interactions / (interactions + 1.0)
        # Inlined ``variance`` (this property runs once per feedback report).
        # Variance of a Bernoulli variable is at most 0.25; normalise.
        variance = self.m2 / (interactions - 1) if interactions > 1 else 0.0
        consistency_term = 1.0 - min(1.0, variance / 0.25)
        return count_term * (0.5 + 0.5 * consistency_term)


#: Process-wide free list of recycled :class:`LocalOpinion` instances.
#: Opinion books of peers that leave the simulation release their objects
#: here instead of handing them to the allocator; the next book that needs a
#: fresh opinion re-initialises a pooled one.  Re-initialisation restores
#: every field to the constructor state, so pooling is invisible to results.
_OPINION_POOL: list[LocalOpinion] = []

#: Upper bound on pooled objects, so a huge churn storm cannot pin
#: unbounded memory in the free list.
_OPINION_POOL_LIMIT = 4096


@dataclass
class OpinionBook:
    """All local opinions held by a single peer, keyed by subject."""

    owner: PeerId
    smoothing: float = 0.3
    _opinions: dict[PeerId, LocalOpinion] = field(default_factory=dict)

    def record_interaction(self, subject: PeerId, satisfaction: float) -> LocalOpinion:
        """Record the outcome of one transaction with ``subject``.

        The body of :meth:`LocalOpinion.record` is inlined (same arithmetic,
        same order): this runs once per feedback report and the method call
        was most of its cost on the transaction hot path.
        """
        opinion = self._opinions.get(subject)
        if opinion is None:
            if _OPINION_POOL:
                opinion = _OPINION_POOL.pop()
                opinion.value = 0.5
                opinion.interactions = 0
                opinion.mean = 0.0
                opinion.m2 = 0.0
            else:
                opinion = LocalOpinion()
            self._opinions[subject] = opinion
        if satisfaction > 1.0:
            satisfaction = 1.0
        elif satisfaction < 0.0:
            satisfaction = 0.0
        interactions = opinion.interactions
        if interactions == 0:
            opinion.value = satisfaction
        else:
            smoothing = self.smoothing
            opinion.value = (1.0 - smoothing) * opinion.value + smoothing * satisfaction
        interactions += 1
        opinion.interactions = interactions
        delta = satisfaction - opinion.mean
        opinion.mean += delta / interactions
        opinion.m2 += delta * (satisfaction - opinion.mean)
        return opinion

    def release(self) -> int:
        """Return every opinion to the shared pool and empty the book.

        Called when the owning peer permanently leaves the simulation; the
        recycled objects are reset before reuse, so releasing never leaks
        state between peers.  Returns the number of opinions released.
        """
        released = 0
        for opinion in self._opinions.values():
            if len(_OPINION_POOL) >= _OPINION_POOL_LIMIT:
                break
            _OPINION_POOL.append(opinion)
            released += 1
        self._opinions.clear()
        return released

    def opinion_about(self, subject: PeerId) -> LocalOpinion | None:
        """Return the opinion about ``subject`` or ``None`` if never met."""
        return self._opinions.get(subject)

    def subjects(self) -> list[PeerId]:
        """Peers this owner holds an opinion about."""
        return list(self._opinions)

    def __len__(self) -> int:
        return len(self._opinions)


def opinion_entropy(value: float) -> float:
    """Binary entropy of an opinion value — an alternative quality penalty.

    Exposed for the ablation benches: ROCQ variants sometimes use the entropy
    of the opinion (uncertainty highest at 0.5) instead of sample variance to
    derive quality.  Returns a value in ``[0, 1]``.
    """
    p = min(1.0 - 1e-12, max(1e-12, value))
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))
