"""Reporter credibility tracking.

A score manager does not trust every report equally: reporters whose opinions
historically agree with the aggregated reputation of the subjects they report
on are considered credible; reporters who consistently deviate (malicious
badmouthing, or uncooperative peers that always report dissatisfaction to
shield their own reputation) see their credibility eroded and their future
reports discounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ids import PeerId

__all__ = ["CredibilityRecord", "CredibilityTable"]


@dataclass(slots=True)
class CredibilityRecord:
    """Credibility a score manager assigns to one reporter."""

    value: float = 0.5
    reports: int = 0

    def update(self, agreement: float, gain: float) -> None:
        """Move credibility towards ``agreement`` with learning rate ``gain``.

        ``agreement`` is 1 when the report matched the aggregate exactly and
        0 when it was maximally distant, so credibility is an exponentially
        weighted estimate of the reporter's historical accuracy.
        """
        agreement = min(1.0, max(0.0, agreement))
        self.value = (1.0 - gain) * self.value + gain * agreement
        self.reports += 1


@dataclass
class CredibilityTable:
    """All credibility records held by one score manager."""

    initial_credibility: float = 0.5
    gain: float = 0.1
    _records: dict[PeerId, CredibilityRecord] = field(default_factory=dict)

    def credibility_of(self, reporter: PeerId) -> float:
        """Current credibility of ``reporter`` (initial value if unknown)."""
        record = self._records.get(reporter)
        if record is None:
            return self.initial_credibility
        return record.value

    def record_for(self, reporter: PeerId) -> CredibilityRecord:
        """Return (creating if needed) the record for ``reporter``."""
        record = self._records.get(reporter)
        if record is None:
            record = CredibilityRecord(value=self.initial_credibility)
            self._records[reporter] = record
        return record

    def update(self, reporter: PeerId, reported_value: float, aggregate: float) -> float:
        """Update ``reporter``'s credibility after one of its reports.

        Agreement is measured as ``1 - |reported - aggregate|``.  Returns the
        new credibility value.
        """
        record = self.record_for(reporter)
        agreement = 1.0 - abs(reported_value - aggregate)
        record.update(agreement, self.gain)
        return record.value

    def known_reporters(self) -> list[PeerId]:
        """Reporters with an explicit credibility record."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)
