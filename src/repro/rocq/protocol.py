"""Message types exchanged with score managers.

The simulator delivers these instantly (the paper models no transmission
delay or loss) but keeping them as explicit, signed-in-spirit value objects
preserves the protocol structure: feedback reports after transactions, and
reputation adjustments for the lending protocol (stake deduction, credit to
the new entrant, settlement after an audit).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..ids import PeerId

__all__ = ["FeedbackReport", "AdjustmentKind", "ReputationAdjustment"]


@dataclass(frozen=True, slots=True)
class FeedbackReport:
    """One satisfaction report sent to a subject's score managers.

    Attributes
    ----------
    reporter:
        The peer that took part in the transaction and is reporting.
    subject:
        The transaction partner being reported on.
    value:
        Satisfaction in ``[0, 1]``: the paper uses 1 (satisfied) or 0 (not).
    quality:
        Confidence attached to the report (from the reporter's opinion book).
    time:
        Simulation time of the transaction.
    """

    reporter: PeerId
    subject: PeerId
    value: float
    quality: float
    time: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"report value must be in [0, 1], got {self.value}")
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"report quality must be in [0, 1], got {self.quality}")


class AdjustmentKind(str, Enum):
    """Why a direct reputation adjustment was issued."""

    LEND_DEBIT = "lend_debit"          # introducer stakes introAmt
    LEND_CREDIT = "lend_credit"        # new entrant receives introAmt
    AUDIT_RETURN = "audit_return"      # stake returned after a positive audit
    AUDIT_REWARD = "audit_reward"      # reward for introducing a good peer
    AUDIT_PENALTY = "audit_penalty"    # entrant stripped of the lent amount
    SANCTION = "sanction"              # punishment (e.g. duplicate introductions)
    BOOTSTRAP_CREDIT = "bootstrap_credit"  # fixed-credit baseline grant


@dataclass(frozen=True, slots=True)
class ReputationAdjustment:
    """A signed instruction to add ``delta`` to ``subject``'s stored reputation.

    ``issuer`` identifies the peer on whose behalf the adjustment is made (the
    introducer for lending messages, the score-manager quorum for sanctions).
    ``reference`` carries the unique introduction id so duplicate messages can
    be detected, mirroring the paper's "unique id to prevent duplicate
    requests".
    """

    kind: AdjustmentKind
    issuer: PeerId
    subject: PeerId
    delta: float
    time: float
    reference: str = ""
