"""The replicated reputation store.

:class:`ReputationStore` is the facade the rest of the library talks to.  It
combines the overlay's score-manager assignment with the per-manager
:class:`~repro.rocq.score_manager.ScoreManager` state:

* ``global_reputation(subject)`` — query the subject's current managers and
  combine their stored values (mean by default, median available), which is
  what a peer obtains when it "asks for the reputation of the requesting
  peer" before a transaction;
* ``submit_report(report)`` — deliver a feedback report to every manager of
  the subject;
* ``apply_adjustment(adjustment)`` — deliver a lending-protocol adjustment to
  every manager of the subject and return the mean amount actually applied;
* churn hooks implementing the overlay's ``ReputationStoreProtocol`` so
  records survive manager departures.

Manager lists are cached, and the cache is kept coherent under churn by
**targeted invalidation**: alongside each cached subject the store remembers
the ring keys its assignment depends on (a reverse index from overlay arcs
to cached subjects), so a single join/leave — delivered as a
:class:`~repro.overlay.membership.MembershipChange` via
:meth:`ReputationStore.membership_changed` — evicts only the handful of
subjects whose replica keys land in the changed arc instead of clearing the
whole cache.  ``invalidate_assignments`` (the blanket clear) remains the
fallback for callers without structured change information.

On top of the assignment cache sits a **combined-reputation cache**: the
clamped mean/median ``global_reputation`` computes per subject is memoised
and invalidated whenever anything that feeds it changes — a report or
adjustment about the subject, a bootstrap install, a migrated record, a
departed manager, or an assignment eviction.  Periodic metric samples read
the reputation of *every* active peer, so between two samples the overwhelm-
ing majority of subjects are untouched and served from this cache; the
profiling harness (``python -m repro bench profile``) is what exposed that
recomputation as the dominant end-to-end cost.
"""

from __future__ import annotations

import hashlib
import statistics
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..ids import PeerId
from ..overlay.assignment import ScoreManagerAssignment
from ..overlay.membership import MembershipChange
from .credibility import CredibilityRecord
from .protocol import FeedbackReport, ReputationAdjustment
from .score_manager import ReputationRecord, ScoreManager

__all__ = ["ReputationStore"]


@dataclass
class ReputationStore:
    """Replicated, manager-assigned reputation storage for the whole system.

    This is the ``rocq`` entry of the pluggable backend registry
    (:mod:`repro.reputation.backend`) and the reference implementation of the
    ``ReputationBackend`` protocol.
    """

    #: Registry name of this backend (class attribute, not a dataclass field).
    scheme = "rocq"

    assignment: ScoreManagerAssignment
    initial_credibility: float = 0.5
    credibility_gain: float = 0.1
    opinion_smoothing: float = 0.3
    use_credibility: bool = True
    use_quality: bool = True
    combine: str = "mean"
    default_reputation: float = 0.0
    _managers: dict[PeerId, ScoreManager] = field(default_factory=dict)
    _assignment_cache: dict[PeerId, list[PeerId]] = field(default_factory=dict)
    #: Reverse index: ring key -> cached subjects whose assignment depends on
    #: the node at that key (the arc it is responsible for).
    _arc_dependents: dict[int, set[PeerId]] = field(default_factory=dict, repr=False)
    #: Forward index: cached subject -> the ring keys it depends on.
    _arc_dependencies: dict[PeerId, tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )
    #: Cached subject -> per-replica ``(replica_key, first_candidate_key,
    #: last_candidate_key)`` arcs (see
    #: :meth:`ScoreManagerAssignment.assignment_details`); a join outside
    #: every arc provably leaves the assignment untouched, and one inside
    #: only the second half of an arc displaces just the backup candidate.
    _arc_windows: dict[PeerId, tuple[tuple[int, int, int], ...] | None] = field(
        default_factory=dict, repr=False
    )
    #: Memoised combined reputation per subject.  Entries exist only for
    #: subjects whose assignment is cached (so every eviction path that can
    #: change the manager set also drops the combined value) and are popped
    #: by every write that can move the underlying replica values.
    _reputation_cache: dict[PeerId, float] = field(default_factory=dict, repr=False)
    #: Subjects evicted from the assignment cache by a membership change and
    #: not yet revalidated.  Revalidation is *lazy*: the resolve against the
    #: updated ring happens on the subject's next query (``managers_for``),
    #: so a burst of churn pays one resolve per subject actually touched
    #: afterwards instead of one per (change, dependent subject) pair.
    _stale: set[PeerId] = field(default_factory=set, repr=False)
    #: Per-manager hot views used by the fused report loop:
    #: ``manager_id -> (records, credibility_records, initial_cred, gain)``.
    #: The dicts are the manager's own (shared, never copied); entries are
    #: dropped with the manager.
    _manager_views: dict[
        PeerId, tuple[dict, dict, float, float]
    ] = field(default_factory=dict, repr=False)
    reports_delivered: int = 0
    adjustments_delivered: int = 0
    #: Cache-coherency telemetry (exposed for benchmarks and tests).
    full_invalidations: int = 0
    targeted_evictions: int = 0
    #: Joins that displaced only a subject's *second* manager candidate: the
    #: chosen managers (and the memoised combined reputation) stayed valid,
    #: so the cache entry was patched in place instead of evicted.
    targeted_patches: int = 0

    # ------------------------------------------------------------------ #
    # Manager plumbing                                                     #
    # ------------------------------------------------------------------ #
    def manager_state(self, manager_id: PeerId) -> ScoreManager:
        """Return (creating if needed) the state held by ``manager_id``."""
        state = self._managers.get(manager_id)
        if state is None:
            state = ScoreManager(
                manager_id=manager_id,
                initial_credibility=self.initial_credibility,
                credibility_gain=self.credibility_gain,
                opinion_smoothing=self.opinion_smoothing,
                use_credibility=self.use_credibility,
                use_quality=self.use_quality,
            )
            self._managers[manager_id] = state
        return state

    def _manager_view(self, manager_id: PeerId) -> tuple[dict, dict, float, float]:
        """Build (and cache) the fused delivery loop's view of one manager."""
        state = self._managers.get(manager_id)
        if state is None:
            state = self.manager_state(manager_id)
        credibility_table = state.credibility
        view = (
            state._records,
            credibility_table._records,
            credibility_table.initial_credibility,
            credibility_table.gain,
        )
        self._manager_views[manager_id] = view
        return view

    def managers_for(self, subject: PeerId) -> list[PeerId]:
        """Current score managers of ``subject`` (cached).

        Subjects marked stale by :meth:`membership_changed` are revalidated
        here, on first touch; the cache-hit fast path pays nothing for the
        deferral because stale subjects are never *in* the cache.
        """
        managers = self._assignment_cache.get(subject)
        if managers is None:
            if self._stale and subject in self._stale:
                return self._revalidate(subject)
            managers, dependency_keys, windows = self.assignment.assignment_details(
                subject
            )
            # An empty ring yields an empty assignment with no dependency
            # keys to watch; caching it would make the entry un-evictable.
            if dependency_keys:
                self._assignment_cache[subject] = managers
                self._arc_dependencies[subject] = dependency_keys
                self._arc_windows[subject] = windows
                for key in dependency_keys:
                    self._arc_dependents.setdefault(key, set()).add(subject)
        return managers

    def managed_by(self, manager_id: PeerId, peers: list[PeerId]) -> list[PeerId]:
        """Subset of ``peers`` managed by ``manager_id``, via the cache."""
        return self.assignment.managed_by(
            manager_id, peers, managers_lookup=self.managers_for
        )

    def invalidate_assignments(self) -> None:
        """Drop the whole assignment cache (fallback for unscoped changes)."""
        self._assignment_cache.clear()
        self._arc_dependents.clear()
        self._arc_dependencies.clear()
        self._arc_windows.clear()
        self._reputation_cache.clear()
        self._stale.clear()
        self.full_invalidations += 1

    def membership_changed(self, change: MembershipChange | None) -> None:
        """Refresh only the cache entries a single join/leave can affect.

        A cached assignment depends on a known set of ring nodes (the
        candidate successors of its replica keys).  A **leave** can only
        change assignments that depended on the departed node; a **join** can
        only change assignments that depended on the new node's successor —
        the node whose arc the newcomer split.  Each affected subject is
        popped from the assignment cache and marked stale; the resolve
        against the updated ring is deferred to the subject's next query
        (:meth:`managers_for`), so churn bursts cost one resolve per subject
        *touched afterwards* instead of one per (change, dependent) pair,
        and subjects nobody asks about again are never resolved at all.
        Everything else is untouched, so a membership change costs
        O(affected subjects) set insertions.
        """
        if change is None:
            self.invalidate_assignments()
            return
        is_leave = change.is_leave
        anchor = change.node_key if is_leave else change.successor_key
        affected = self._arc_dependents.get(anchor)
        if not affected:
            return
        joined_key = change.node_key
        joined_peer = change.peer_id
        stale = self._stale
        assignment_pop = self._assignment_cache.pop
        reputation_pop = self._reputation_cache.pop
        exclude_self = self.assignment.exclude_self
        nodes_by_key = self.assignment.ring._nodes_by_key
        evicted = 0
        # Patches re-index ``_arc_dependents`` — including, possibly, the
        # ``affected`` set being iterated — so they are collected first and
        # applied after the scan.
        deferred_patches: list[tuple[PeerId, tuple, list[int]]] = []
        for subject in affected:
            if subject in stale:
                # Already awaiting revalidation; its windows predate an
                # earlier change, so the join filter below would be
                # meaningless — and unnecessary.
                continue
            if not is_leave:
                # A join only alters this subject's assignment if the new
                # node's key falls inside one of its candidate arcs; a
                # departed node, by contrast, *was* a candidate, so leaves
                # always revalidate.  The interval tests are ``in_interval``
                # inlined (window endpoints and node keys are canonical ring
                # keys, so no modulo is needed): clockwise ``(start, end]``,
                # wrapping when ``start >= end``, plus the ``== start`` edge
                # folded into the first half.  A hit confined to the second
                # half ``(first, last]`` of its windows displaces only backup
                # candidates — the chosen managers and the memoised combined
                # reputation stay valid, so the entry is patched in place.
                windows = self._arc_windows.get(subject)
                if windows is not None:
                    evict = joined_peer == subject
                    patches: list[int] | None = None
                    if not evict:
                        for index, (start, first, end) in enumerate(windows):
                            if start < end:
                                hit = start <= joined_key <= end
                            elif start > end:
                                hit = joined_key >= start or joined_key <= end
                            else:
                                hit = True  # degenerate: spans the whole ring
                            if not hit:
                                continue
                            if start < first:
                                in_first = start <= joined_key <= first
                            elif start > first:
                                in_first = joined_key >= start or joined_key <= first
                            else:
                                in_first = True
                            if in_first or (
                                exclude_self
                                and nodes_by_key[first].peer_id == subject
                            ):
                                # The first candidate moved — or the first is
                                # the self-excluded subject, so the *chosen*
                                # manager was the second.  Either way the
                                # manager set can change: full eviction.
                                evict = True
                                break
                            if patches is None:
                                patches = [index]
                            else:
                                patches.append(index)
                    if not evict:
                        if patches is not None:
                            deferred_patches.append((subject, windows, patches))
                        continue
            if assignment_pop(subject, None) is not None:
                reputation_pop(subject, None)
                stale.add(subject)
                evicted += 1
        for subject, windows, patches in deferred_patches:
            self._patch_windows(subject, windows, patches, joined_key)
        self.targeted_evictions += evicted
        self.targeted_patches += len(deferred_patches)

    def _patch_windows(
        self,
        subject: PeerId,
        windows: tuple[tuple[int, int, int], ...],
        patches: list[int],
        joined_key: int,
    ) -> None:
        """Apply a second-candidate-only join to a cached subject in place.

        The chosen managers are untouched (the caller proved every window
        hit lies in ``(first, last]``), so only the windows and the arc
        dependency index move: the new node becomes the last candidate of
        each patched window.  The result is exactly what a full
        revalidation would cache — without the ring lookups, and without
        dropping the memoised combined reputation.
        """
        new_windows = list(windows)
        for index in patches:
            start, first, _ = new_windows[index]
            new_windows[index] = (start, first, joined_key)
        self._arc_windows[subject] = tuple(new_windows)
        # Rebuild the dependency keys in replica order (first then last per
        # window, deduplicated) — the exact order assignment_details emits.
        deps: list[int] = []
        seen: set[int] = set()
        for _, first, last in new_windows:
            if first not in seen:
                seen.add(first)
                deps.append(first)
            if last not in seen:
                seen.add(last)
                deps.append(last)
        new_deps = tuple(deps)
        old_deps = self._arc_dependencies.get(subject, ())
        if new_deps == old_deps:
            return
        old_set = set(old_deps)
        new_set = set(new_deps)
        dependents_map = self._arc_dependents
        for key in old_set - new_set:
            dependents = dependents_map.get(key)
            if dependents is not None:
                dependents.discard(subject)
                if not dependents:
                    del dependents_map[key]
        self._arc_dependencies[subject] = new_deps
        for key in new_set - old_set:
            dependents_map.setdefault(key, set()).add(subject)

    def _revalidate(self, subject: PeerId) -> list[PeerId]:
        """Resolve a stale subject against the current ring.

        Runs once per stale subject, on its first query after any number of
        membership changes, and lands on exactly the state the historical
        eager per-change revalidation converged to: the assignment depends
        only on the ring's *current* occupancy, and the memoised combined
        reputation was already dropped when the subject went stale.
        """
        self._stale.discard(subject)
        managers, dependency_keys, windows = self.assignment.assignment_details(subject)
        old_deps = self._arc_dependencies.get(subject, ())
        if not dependency_keys:
            # Ring emptied under us — drop every index entry for the subject.
            self._arc_windows.pop(subject, None)
            self._arc_dependencies.pop(subject, None)
            for key in old_deps:
                dependents = self._arc_dependents.get(key)
                if dependents is not None:
                    dependents.discard(subject)
                    if not dependents:
                        del self._arc_dependents[key]
            return managers
        self._assignment_cache[subject] = managers
        self._arc_windows[subject] = windows
        if dependency_keys != old_deps:
            # A membership change shifts at most a couple of the subject's
            # candidate nodes; only re-index the difference.
            old_set = set(old_deps)
            new_set = set(dependency_keys)
            for key in old_set - new_set:
                dependents = self._arc_dependents.get(key)
                if dependents is not None:
                    dependents.discard(subject)
                    if not dependents:
                        del self._arc_dependents[key]
            self._arc_dependencies[subject] = dependency_keys
            for key in new_set - old_set:
                self._arc_dependents.setdefault(key, set()).add(subject)
        return managers

    def _evict_subject(self, subject: PeerId) -> None:
        """Drop one subject's cached assignment and its reverse-index entries."""
        self._stale.discard(subject)
        if self._assignment_cache.pop(subject, None) is None:
            return
        self._reputation_cache.pop(subject, None)
        self._arc_windows.pop(subject, None)
        self.targeted_evictions += 1
        for key in self._arc_dependencies.pop(subject, ()):
            dependents = self._arc_dependents.get(key)
            if dependents is not None:
                dependents.discard(subject)
                if not dependents:
                    del self._arc_dependents[key]

    # ------------------------------------------------------------------ #
    # Queries                                                              #
    # ------------------------------------------------------------------ #
    def global_reputation(self, subject: PeerId) -> float:
        """Combined reputation of ``subject`` across its managers.

        Managers that have never heard of the subject are skipped; if no
        manager has a record the configured default (0 for new entrants, per
        the paper's bootstrap rule) is returned.  The combined value is
        memoised until a write or assignment eviction touches the subject.
        """
        cached = self._reputation_cache.get(subject)
        if cached is not None:
            return cached
        managers_get = self._managers.get
        values = []
        for manager_id in self.managers_for(subject):
            state = managers_get(manager_id)
            if state is None:
                continue
            # Inlined ScoreManager.reputation_of — this gather runs once per
            # memo miss per manager, and the method call dominated its cost.
            record = state._records.get(subject)
            if record is not None:
                values.append(record.value)
        if not values:
            result = self.default_reputation
        elif self.combine == "median":
            result = float(statistics.median(values))
        else:
            result = float(sum(values) / len(values))
        # Only subjects with a cached assignment are memoised: their entry is
        # guaranteed to be dropped by the eviction paths when the ring moves.
        if subject in self._assignment_cache:
            self._reputation_cache[subject] = result
        return result

    def reputations_for(self, subjects: Iterable[PeerId]) -> list[float]:
        """Combined reputations of many subjects, aligned with the input.

        The bulk form of :meth:`global_reputation` the metrics sampler (and
        the sharded engine's epoch refresh) calls once per batch: between two
        samples the overwhelming majority of subjects are untouched, so most
        answers come straight out of the memo dict without a method call.
        """
        cache_get = self._reputation_cache.get
        global_reputation = self.global_reputation
        out: list[float] = []
        append = out.append
        for subject in subjects:
            cached = cache_get(subject)
            append(cached if cached is not None else global_reputation(subject))
        return out

    def _stored_value(self, manager_id: PeerId, subject: PeerId) -> float | None:
        state = self._managers.get(manager_id)
        if state is None:
            return None
        return state.reputation_of(subject)

    def newcomer_reputation(self) -> float:
        """Reputation of a peer with no record anywhere (the paper's 0)."""
        return self.default_reputation

    def has_any_record(self, subject: PeerId) -> bool:
        """Whether at least one manager stores a record for ``subject``."""
        return any(
            self._stored_value(manager_id, subject) is not None
            for manager_id in self.managers_for(subject)
        )

    def replica_values(self, subject: PeerId) -> list[float]:
        """The individual replica values (useful for divergence metrics)."""
        return [
            value
            for manager_id in self.managers_for(subject)
            if (value := self._stored_value(manager_id, subject)) is not None
        ]

    # ------------------------------------------------------------------ #
    # Updates                                                              #
    # ------------------------------------------------------------------ #
    def submit_report(self, report: FeedbackReport) -> float:
        """Deliver ``report`` to every manager of the subject; return new mean."""
        self._reputation_cache.pop(report.subject, None)
        values = []
        for manager_id in self.managers_for(report.subject):
            state = self.manager_state(manager_id)
            values.append(state.receive_report(report))
            self.reports_delivered += 1
        if not values:
            return self.default_reputation
        return float(sum(values) / len(values))

    def submit_report_batch(self, reports: Iterable[FeedbackReport]) -> None:
        """Deliver the reports of one event dispatch, in submission order.

        Compared with calling :meth:`submit_report` per report, this skips
        the per-report combined-mean computation nobody reads (both partners
        of a transaction report on each other fire-and-forget), resolves the
        store-level plumbing once, and fuses the per-manager
        :meth:`ScoreManager.receive_report` body into the delivery loop with
        the shared configuration hoisted out (every manager is created with
        the store's constants).  The arithmetic runs in exactly the order of
        ``receive_report``, so the result is bit-identical to submitting the
        reports one at a time.

        Delivery also *pre-warms* the combined-reputation memo: after a
        report reaches every manager of the subject, the per-manager values
        collected along the way are — in the same order — exactly the list
        :meth:`global_reputation` would rebuild on its next miss, so the
        combine is computed here once (with the identical expression) and the
        subsequent serve-probability query and metrics sample hit the memo.
        """
        count = 0
        reputation_pop = self._reputation_cache.pop
        reputation_cache = self._reputation_cache
        views = self._manager_views
        assignment_get = self._assignment_cache.get
        managers_for = self.managers_for
        smoothing = self.opinion_smoothing
        use_credibility = self.use_credibility
        use_quality = self.use_quality
        is_median = self.combine == "median"
        for report in reports:
            subject = report.subject
            reputation_pop(subject, None)
            reporter = report.reporter
            report_value = report.value
            quality = report.quality
            report_time = report.time
            new_values: list[float] = []
            managers = assignment_get(subject)
            if managers is None:
                managers = managers_for(subject)
            for manager_id in managers:
                view = views.get(manager_id)
                if view is None:
                    view = self._manager_view(manager_id)
                records, cred_records, initial_cred, gain = view
                record = records.get(subject)
                if record is None:
                    record = ReputationRecord()
                    records[subject] = record
                cred = cred_records.get(reporter)
                weight = smoothing
                if use_credibility:
                    weight *= cred.value if cred is not None else initial_cred
                if use_quality:
                    weight *= quality if quality > 0.05 else 0.05
                # Inlined ReputationRecord.apply_report(report_value, weight).
                if weight > 1.0:
                    weight = 1.0
                elif weight < 0.0:
                    weight = 0.0
                if record.reports == 0 and record.adjustments == 0 and not record.seeded:
                    # First evidence with no prior: adopt the reported value
                    # outright (see apply_report for the rationale).
                    value = report_value
                else:
                    value = (1.0 - weight) * record.value + weight * report_value
                if value < 0.0:
                    value = 0.0
                elif value > 1.0:
                    value = 1.0
                record.value = value
                record.reports += 1
                record.last_update = report_time
                # Credibility updates against the post-update aggregate
                # (inlined CredibilityRecord.update).
                if cred is None:
                    cred = CredibilityRecord(value=initial_cred)
                    cred_records[reporter] = cred
                agreement = 1.0 - abs(report_value - value)
                if agreement < 0.0:
                    agreement = 0.0
                elif agreement > 1.0:
                    agreement = 1.0
                cred.value = (1.0 - gain) * cred.value + gain * agreement
                cred.reports += 1
                new_values.append(value)
                count += 1
            if new_values:
                # Same expression, same value order as global_reputation —
                # the memoised result is bit-identical to a recompute.  (A
                # non-empty manager list implies the assignment was cached
                # by managers_for, which is the memo's invariant.)
                if is_median:
                    reputation_cache[subject] = float(statistics.median(new_values))
                else:
                    reputation_cache[subject] = float(
                        sum(new_values) / len(new_values)
                    )
        self.reports_delivered += count

    def apply_adjustment(self, adjustment: ReputationAdjustment) -> float:
        """Deliver a direct adjustment to every manager; return mean applied.

        Like the batched report path, delivery pre-warms the combined-
        reputation memo: each manager's post-adjustment value is collected in
        manager order and combined with the exact expression of
        :meth:`global_reputation`, so the lending protocol's debit/credit
        pairs do not force a full recompute on the subject's next query.
        """
        subject = adjustment.subject
        self._reputation_cache.pop(subject, None)
        applied = []
        values = []
        managers = self._assignment_cache.get(subject)
        if managers is None:
            managers = self.managers_for(subject)
        views = self._manager_views
        delta = adjustment.delta
        adjustment_time = adjustment.time
        delivered = 0
        for manager_id in managers:
            view = views.get(manager_id)
            if view is None:
                view = self._manager_view(manager_id)
            records = view[0]
            record = records.get(subject)
            if record is None:
                record = ReputationRecord()
                records[subject] = record
            # Inlined ReputationRecord.apply_adjustment (identical order).
            before = record.value
            value = before + delta
            if value < 0.0:
                value = 0.0
            elif value > 1.0:
                value = 1.0
            record.value = value
            record.adjustments += 1
            record.last_update = adjustment_time
            applied.append(value - before)
            values.append(value)
            delivered += 1
        self.adjustments_delivered += delivered
        if values and subject in self._assignment_cache:
            if self.combine == "median":
                self._reputation_cache[subject] = float(statistics.median(values))
            else:
                self._reputation_cache[subject] = float(sum(values) / len(values))
        if not applied:
            return 0.0
        return float(sum(applied) / len(applied))

    def set_reputation(self, subject: PeerId, value: float, time: float = 0.0) -> None:
        """Set the stored reputation at every current manager (bootstrap)."""
        self._reputation_cache.pop(subject, None)
        for manager_id in self.managers_for(subject):
            self.manager_state(manager_id).set_reputation(subject, value, time)

    # ------------------------------------------------------------------ #
    # Churn protocol (overlay.ReputationStoreProtocol)                     #
    # ------------------------------------------------------------------ #
    def tracked_peers(self, manager_id: PeerId) -> Iterable[PeerId]:
        state = self._managers.get(manager_id)
        if state is None:
            return []
        return state.tracked_subjects()

    def export_record(self, manager_id: PeerId, subject_id: PeerId) -> object | None:
        state = self._managers.get(manager_id)
        if state is None:
            return None
        return state.export_record(subject_id)

    def install_record(
        self, manager_id: PeerId, subject_id: PeerId, record: object
    ) -> None:
        if not isinstance(record, dict):
            raise TypeError("reputation records migrate as snapshot dicts")
        self._reputation_cache.pop(subject_id, None)
        self.manager_state(manager_id).install_record(subject_id, record)

    def drop_manager(self, manager_id: PeerId) -> None:
        state = self._managers.pop(manager_id, None)
        self._manager_views.pop(manager_id, None)
        if state is not None:
            for subject in state.tracked_subjects():
                self._reputation_cache.pop(subject, None)
            state.drop_all()

    # ------------------------------------------------------------------ #
    # State digest (trace divergence bisection)                            #
    # ------------------------------------------------------------------ #
    def state_digest(self) -> str:
        """Deterministic digest of every manager's records and credibility.

        Iteration is over *sorted* manager and subject ids, so the digest is
        independent of dict insertion order; the assignment cache is derived
        state and deliberately excluded.
        """
        parts = hashlib.sha256()
        for manager_id in sorted(self._managers):
            state = self._managers[manager_id]
            parts.update(f"m{manager_id}".encode("ascii"))
            for subject in sorted(state.tracked_subjects()):
                snapshot = state.export_record(subject)
                parts.update(f"|{subject}:{snapshot!r}".encode("utf-8"))
            credibility = state.credibility
            for reporter in sorted(credibility.known_reporters()):
                record = credibility.record_for(reporter)
                parts.update(
                    f"|c{reporter}:{record.value!r}:{record.reports}".encode("ascii")
                )
        parts.update(
            f"|r{self.reports_delivered}a{self.adjustments_delivered}".encode("ascii")
        )
        return parts.hexdigest()

    # ------------------------------------------------------------------ #
    # Durable persistence (repro.storage)                                  #
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot covering everything :meth:`state_digest`
        hashes: every manager's record snapshots and credibility table, plus
        the delivery counters.

        Dict keys are stringified (JSON object keys are always strings);
        :meth:`restore_state` parses them back to ints.  Floats round-trip
        exactly through JSON, so a save → load → restore cycle reproduces
        the digest bit-for-bit.  Caches, telemetry counters and the
        assignment are derived/configured state and are excluded, exactly as
        they are from the digest.
        """
        managers: dict[str, Any] = {}
        for manager_id in sorted(self._managers):
            state = self._managers[manager_id]
            credibility = state.credibility
            managers[str(manager_id)] = {
                "records": {
                    str(subject): state.export_record(subject)
                    for subject in sorted(state.tracked_subjects())
                },
                "credibility": {
                    str(reporter): {
                        "value": credibility.record_for(reporter).value,
                        "reports": credibility.record_for(reporter).reports,
                    }
                    for reporter in sorted(credibility.known_reporters())
                },
            }
        return {
            "scheme": self.scheme,
            "managers": managers,
            "reports_delivered": self.reports_delivered,
            "adjustments_delivered": self.adjustments_delivered,
        }

    def restore_state(self, payload: dict[str, Any]) -> None:
        """Rebuild manager state from an :meth:`export_state` payload.

        Replaces whatever the store currently holds: existing managers and
        every derived cache (assignment, arc indices, combined-reputation
        memo, fused-loop views) are dropped, then managers are rebuilt with
        the store's own configuration via :meth:`manager_state`.  The
        assignment itself is construction-time configuration and is *not*
        part of the snapshot — the caller is responsible for constructing
        the store against the same overlay it was saved under.
        """
        self._managers.clear()
        self._manager_views.clear()
        self._assignment_cache.clear()
        self._arc_dependents.clear()
        self._arc_dependencies.clear()
        self._arc_windows.clear()
        self._reputation_cache.clear()
        self._stale.clear()
        for manager_key, manager_payload in payload.get("managers", {}).items():
            state = self.manager_state(int(manager_key))
            for subject_key, snapshot in manager_payload.get("records", {}).items():
                state._records[int(subject_key)] = ReputationRecord.from_snapshot(
                    snapshot
                )
            for reporter_key, cred in manager_payload.get("credibility", {}).items():
                state.credibility._records[int(reporter_key)] = CredibilityRecord(
                    value=float(cred["value"]), reports=int(cred["reports"])
                )
        self.reports_delivered = int(payload.get("reports_delivered", 0))
        self.adjustments_delivered = int(payload.get("adjustments_delivered", 0))
