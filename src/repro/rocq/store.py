"""The replicated reputation store.

:class:`ReputationStore` is the facade the rest of the library talks to.  It
combines the overlay's score-manager assignment with the per-manager
:class:`~repro.rocq.score_manager.ScoreManager` state:

* ``global_reputation(subject)`` — query the subject's current managers and
  combine their stored values (mean by default, median available), which is
  what a peer obtains when it "asks for the reputation of the requesting
  peer" before a transaction;
* ``submit_report(report)`` — deliver a feedback report to every manager of
  the subject;
* ``apply_adjustment(adjustment)`` — deliver a lending-protocol adjustment to
  every manager of the subject and return the mean amount actually applied;
* churn hooks implementing the overlay's ``ReputationStoreProtocol`` so
  records survive manager departures.

Manager lists are cached, and the cache is kept coherent under churn by
**targeted invalidation**: alongside each cached subject the store remembers
the ring keys its assignment depends on (a reverse index from overlay arcs
to cached subjects), so a single join/leave — delivered as a
:class:`~repro.overlay.membership.MembershipChange` via
:meth:`ReputationStore.membership_changed` — evicts only the handful of
subjects whose replica keys land in the changed arc instead of clearing the
whole cache.  ``invalidate_assignments`` (the blanket clear) remains the
fallback for callers without structured change information.

On top of the assignment cache sits a **combined-reputation cache**: the
clamped mean/median ``global_reputation`` computes per subject is memoised
and invalidated whenever anything that feeds it changes — a report or
adjustment about the subject, a bootstrap install, a migrated record, a
departed manager, or an assignment eviction.  Periodic metric samples read
the reputation of *every* active peer, so between two samples the overwhelm-
ing majority of subjects are untouched and served from this cache; the
profiling harness (``python -m repro bench profile``) is what exposed that
recomputation as the dominant end-to-end cost.
"""

from __future__ import annotations

import hashlib
import statistics
from dataclasses import dataclass, field
from typing import Iterable

from ..ids import PeerId
from ..overlay.assignment import ScoreManagerAssignment
from ..overlay.hashing import in_interval
from ..overlay.membership import MembershipChange
from .protocol import FeedbackReport, ReputationAdjustment
from .score_manager import ScoreManager

__all__ = ["ReputationStore"]


@dataclass
class ReputationStore:
    """Replicated, manager-assigned reputation storage for the whole system.

    This is the ``rocq`` entry of the pluggable backend registry
    (:mod:`repro.reputation.backend`) and the reference implementation of the
    ``ReputationBackend`` protocol.
    """

    #: Registry name of this backend (class attribute, not a dataclass field).
    scheme = "rocq"

    assignment: ScoreManagerAssignment
    initial_credibility: float = 0.5
    credibility_gain: float = 0.1
    opinion_smoothing: float = 0.3
    use_credibility: bool = True
    use_quality: bool = True
    combine: str = "mean"
    default_reputation: float = 0.0
    _managers: dict[PeerId, ScoreManager] = field(default_factory=dict)
    _assignment_cache: dict[PeerId, list[PeerId]] = field(default_factory=dict)
    #: Reverse index: ring key -> cached subjects whose assignment depends on
    #: the node at that key (the arc it is responsible for).
    _arc_dependents: dict[int, set[PeerId]] = field(default_factory=dict, repr=False)
    #: Forward index: cached subject -> the ring keys it depends on.
    _arc_dependencies: dict[PeerId, tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )
    #: Cached subject -> per-replica ``(replica_key, last_candidate_key)``
    #: arcs (see :meth:`ScoreManagerAssignment.assignment_details`); a join
    #: outside every arc provably leaves the assignment untouched.
    _arc_windows: dict[PeerId, tuple[tuple[int, int], ...] | None] = field(
        default_factory=dict, repr=False
    )
    #: Memoised combined reputation per subject.  Entries exist only for
    #: subjects whose assignment is cached (so every eviction path that can
    #: change the manager set also drops the combined value) and are popped
    #: by every write that can move the underlying replica values.
    _reputation_cache: dict[PeerId, float] = field(default_factory=dict, repr=False)
    reports_delivered: int = 0
    adjustments_delivered: int = 0
    #: Cache-coherency telemetry (exposed for benchmarks and tests).
    full_invalidations: int = 0
    targeted_evictions: int = 0

    # ------------------------------------------------------------------ #
    # Manager plumbing                                                     #
    # ------------------------------------------------------------------ #
    def manager_state(self, manager_id: PeerId) -> ScoreManager:
        """Return (creating if needed) the state held by ``manager_id``."""
        state = self._managers.get(manager_id)
        if state is None:
            state = ScoreManager(
                manager_id=manager_id,
                initial_credibility=self.initial_credibility,
                credibility_gain=self.credibility_gain,
                opinion_smoothing=self.opinion_smoothing,
                use_credibility=self.use_credibility,
                use_quality=self.use_quality,
            )
            self._managers[manager_id] = state
        return state

    def managers_for(self, subject: PeerId) -> list[PeerId]:
        """Current score managers of ``subject`` (cached)."""
        managers = self._assignment_cache.get(subject)
        if managers is None:
            managers, dependency_keys, windows = self.assignment.assignment_details(
                subject
            )
            # An empty ring yields an empty assignment with no dependency
            # keys to watch; caching it would make the entry un-evictable.
            if dependency_keys:
                self._assignment_cache[subject] = managers
                self._arc_dependencies[subject] = dependency_keys
                self._arc_windows[subject] = windows
                for key in dependency_keys:
                    self._arc_dependents.setdefault(key, set()).add(subject)
        return managers

    def managed_by(self, manager_id: PeerId, peers: list[PeerId]) -> list[PeerId]:
        """Subset of ``peers`` managed by ``manager_id``, via the cache."""
        return self.assignment.managed_by(
            manager_id, peers, managers_lookup=self.managers_for
        )

    def invalidate_assignments(self) -> None:
        """Drop the whole assignment cache (fallback for unscoped changes)."""
        self._assignment_cache.clear()
        self._arc_dependents.clear()
        self._arc_dependencies.clear()
        self._arc_windows.clear()
        self._reputation_cache.clear()
        self.full_invalidations += 1

    def membership_changed(self, change: MembershipChange | None) -> None:
        """Refresh only the cache entries a single join/leave can affect.

        A cached assignment depends on a known set of ring nodes (the
        candidate successors of its replica keys).  A **leave** can only
        change assignments that depended on the departed node; a **join** can
        only change assignments that depended on the new node's successor —
        the node whose arc the newcomer split.  Each affected subject is
        *revalidated in place* against the updated ring: its assignment is
        recomputed once (the cost a lazy eviction would pay on the next
        query anyway), and when the manager list turns out unchanged — a
        frequent outcome, since a join often lands behind the replica key
        inside the split arc — the memoised combined reputation survives
        untouched.  Everything else is untouched, so a membership change
        costs O(affected subjects) instead of a full cache rebuild.
        """
        if change is None:
            self.invalidate_assignments()
            return
        is_leave = change.is_leave
        anchor = change.node_key if is_leave else change.successor_key
        affected = self._arc_dependents.get(anchor)
        if not affected:
            return
        joined_key = change.node_key
        resolve = self.assignment.assignment_details
        for subject in list(affected):
            if not is_leave:
                # A join only alters this subject's assignment if the new
                # node's key falls inside one of its candidate arcs; a
                # departed node, by contrast, *was* a candidate, so leaves
                # always revalidate.
                windows = self._arc_windows.get(subject)
                if windows is not None and not any(
                    joined_key == start or in_interval(joined_key, start, end)
                    for start, end in windows
                ):
                    continue
            managers, dependency_keys, windows = resolve(subject)
            if not dependency_keys:
                # Ring emptied under us — nothing to keep coherent.
                self._evict_subject(subject)
                continue
            if managers != self._assignment_cache.get(subject):
                self._assignment_cache[subject] = managers
                self._reputation_cache.pop(subject, None)
                self.targeted_evictions += 1
            self._arc_windows[subject] = windows
            old_deps = self._arc_dependencies.get(subject, ())
            if dependency_keys != old_deps:
                # A single membership change shifts at most a couple of the
                # subject's candidate nodes; only re-index the difference.
                old_set = set(old_deps)
                new_set = set(dependency_keys)
                for key in old_set - new_set:
                    dependents = self._arc_dependents.get(key)
                    if dependents is not None:
                        dependents.discard(subject)
                        if not dependents:
                            del self._arc_dependents[key]
                self._arc_dependencies[subject] = dependency_keys
                for key in new_set - old_set:
                    self._arc_dependents.setdefault(key, set()).add(subject)

    def _evict_subject(self, subject: PeerId) -> None:
        """Drop one subject's cached assignment and its reverse-index entries."""
        if self._assignment_cache.pop(subject, None) is None:
            return
        self._reputation_cache.pop(subject, None)
        self._arc_windows.pop(subject, None)
        self.targeted_evictions += 1
        for key in self._arc_dependencies.pop(subject, ()):
            dependents = self._arc_dependents.get(key)
            if dependents is not None:
                dependents.discard(subject)
                if not dependents:
                    del self._arc_dependents[key]

    # ------------------------------------------------------------------ #
    # Queries                                                              #
    # ------------------------------------------------------------------ #
    def global_reputation(self, subject: PeerId) -> float:
        """Combined reputation of ``subject`` across its managers.

        Managers that have never heard of the subject are skipped; if no
        manager has a record the configured default (0 for new entrants, per
        the paper's bootstrap rule) is returned.  The combined value is
        memoised until a write or assignment eviction touches the subject.
        """
        cached = self._reputation_cache.get(subject)
        if cached is not None:
            return cached
        managers_get = self._managers.get
        values = []
        for manager_id in self.managers_for(subject):
            state = managers_get(manager_id)
            if state is None:
                continue
            value = state.reputation_of(subject)
            if value is not None:
                values.append(value)
        if not values:
            result = self.default_reputation
        elif self.combine == "median":
            result = float(statistics.median(values))
        else:
            result = float(sum(values) / len(values))
        # Only subjects with a cached assignment are memoised: their entry is
        # guaranteed to be dropped by the eviction paths when the ring moves.
        if subject in self._assignment_cache:
            self._reputation_cache[subject] = result
        return result

    def _stored_value(self, manager_id: PeerId, subject: PeerId) -> float | None:
        state = self._managers.get(manager_id)
        if state is None:
            return None
        return state.reputation_of(subject)

    def newcomer_reputation(self) -> float:
        """Reputation of a peer with no record anywhere (the paper's 0)."""
        return self.default_reputation

    def has_any_record(self, subject: PeerId) -> bool:
        """Whether at least one manager stores a record for ``subject``."""
        return any(
            self._stored_value(manager_id, subject) is not None
            for manager_id in self.managers_for(subject)
        )

    def replica_values(self, subject: PeerId) -> list[float]:
        """The individual replica values (useful for divergence metrics)."""
        return [
            value
            for manager_id in self.managers_for(subject)
            if (value := self._stored_value(manager_id, subject)) is not None
        ]

    # ------------------------------------------------------------------ #
    # Updates                                                              #
    # ------------------------------------------------------------------ #
    def submit_report(self, report: FeedbackReport) -> float:
        """Deliver ``report`` to every manager of the subject; return new mean."""
        self._reputation_cache.pop(report.subject, None)
        values = []
        for manager_id in self.managers_for(report.subject):
            state = self.manager_state(manager_id)
            values.append(state.receive_report(report))
            self.reports_delivered += 1
        if not values:
            return self.default_reputation
        return float(sum(values) / len(values))

    def submit_report_batch(self, reports: Iterable[FeedbackReport]) -> None:
        """Deliver the reports of one event dispatch, in submission order.

        Compared with calling :meth:`submit_report` per report, this skips
        the per-report combined-mean computation nobody reads (both partners
        of a transaction report on each other fire-and-forget) and resolves
        the store-level plumbing once.  Delivery order is preserved within
        each manager, and distinct managers share no mutable state, so the
        result is bit-identical to submitting the reports one at a time.
        """
        count = 0
        reputation_pop = self._reputation_cache.pop
        managers = self._managers
        for report in reports:
            subject = report.subject
            reputation_pop(subject, None)
            for manager_id in self.managers_for(subject):
                state = managers.get(manager_id)
                if state is None:
                    state = self.manager_state(manager_id)
                state.receive_report(report)
                count += 1
        self.reports_delivered += count

    def apply_adjustment(self, adjustment: ReputationAdjustment) -> float:
        """Deliver a direct adjustment to every manager; return mean applied."""
        self._reputation_cache.pop(adjustment.subject, None)
        applied = []
        for manager_id in self.managers_for(adjustment.subject):
            state = self.manager_state(manager_id)
            applied.append(state.receive_adjustment(adjustment))
            self.adjustments_delivered += 1
        if not applied:
            return 0.0
        return float(sum(applied) / len(applied))

    def set_reputation(self, subject: PeerId, value: float, time: float = 0.0) -> None:
        """Set the stored reputation at every current manager (bootstrap)."""
        self._reputation_cache.pop(subject, None)
        for manager_id in self.managers_for(subject):
            self.manager_state(manager_id).set_reputation(subject, value, time)

    # ------------------------------------------------------------------ #
    # Churn protocol (overlay.ReputationStoreProtocol)                     #
    # ------------------------------------------------------------------ #
    def tracked_peers(self, manager_id: PeerId) -> Iterable[PeerId]:
        state = self._managers.get(manager_id)
        if state is None:
            return []
        return state.tracked_subjects()

    def export_record(self, manager_id: PeerId, subject_id: PeerId) -> object | None:
        state = self._managers.get(manager_id)
        if state is None:
            return None
        return state.export_record(subject_id)

    def install_record(
        self, manager_id: PeerId, subject_id: PeerId, record: object
    ) -> None:
        if not isinstance(record, dict):
            raise TypeError("reputation records migrate as snapshot dicts")
        self._reputation_cache.pop(subject_id, None)
        self.manager_state(manager_id).install_record(subject_id, record)

    def drop_manager(self, manager_id: PeerId) -> None:
        state = self._managers.pop(manager_id, None)
        if state is not None:
            for subject in state.tracked_subjects():
                self._reputation_cache.pop(subject, None)
            state.drop_all()

    # ------------------------------------------------------------------ #
    # State digest (trace divergence bisection)                            #
    # ------------------------------------------------------------------ #
    def state_digest(self) -> str:
        """Deterministic digest of every manager's records and credibility.

        Iteration is over *sorted* manager and subject ids, so the digest is
        independent of dict insertion order; the assignment cache is derived
        state and deliberately excluded.
        """
        parts = hashlib.sha256()
        for manager_id in sorted(self._managers):
            state = self._managers[manager_id]
            parts.update(f"m{manager_id}".encode("ascii"))
            for subject in sorted(state.tracked_subjects()):
                snapshot = state.export_record(subject)
                parts.update(f"|{subject}:{snapshot!r}".encode("utf-8"))
            credibility = state.credibility
            for reporter in sorted(credibility.known_reporters()):
                record = credibility.record_for(reporter)
                parts.update(
                    f"|c{reporter}:{record.value!r}:{record.reports}".encode("ascii")
                )
        parts.update(
            f"|r{self.reports_delivered}a{self.adjustments_delivered}".encode("ascii")
        )
        return parts.hexdigest()
