"""Per-manager reputation aggregation state.

Each score manager maintains, for every subject it is responsible for, a
:class:`ReputationRecord`: the current aggregated reputation plus bookkeeping
about how many reports contributed to it.  Reports move the aggregate by an
amount proportional to the reporter's credibility and the opinion's quality
(the C and Q of ROCQ); direct adjustments (the lending protocol's debits,
credits, rewards and sanctions) add to it, clamped to ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ids import PeerId
from .credibility import CredibilityRecord, CredibilityTable
from .protocol import FeedbackReport, ReputationAdjustment

__all__ = ["ReputationRecord", "ScoreManager"]


def _clamp(value: float) -> float:
    """Clamp ``value`` into the legal reputation range ``[0, 1]``."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


@dataclass(slots=True)
class ReputationRecord:
    """Reputation a single score manager stores for one subject."""

    value: float = 0.0
    reports: int = 0
    adjustments: int = 0
    last_update: float = 0.0
    #: True when the value was installed explicitly (founder bootstrap or a
    #: migrated snapshot) rather than derived from reports/adjustments.
    seeded: bool = False

    def apply_report(self, report_value: float, weight: float, time: float) -> None:
        """Fold one weighted report into the aggregate.

        The aggregate is an exponentially weighted average whose effective
        step size is the report weight (credibility x quality x smoothing),
        so low-credibility or low-quality reports barely move it.
        """
        weight = min(1.0, max(0.0, weight))
        if self.reports == 0 and self.adjustments == 0 and not self.seeded:
            # First evidence about a subject this manager has no prior for
            # (a brand-new replica, typically created when score-manager
            # responsibility shifted onto this node after churn): adopt the
            # reported value outright.  Averaging across the other replicas
            # and subsequent reports smooths out a dishonest first report.
            self.value = _clamp(report_value)
        else:
            self.value = _clamp((1.0 - weight) * self.value + weight * report_value)
        self.reports += 1
        self.last_update = time

    def apply_adjustment(self, delta: float, time: float) -> float:
        """Apply a direct adjustment; return the amount actually applied.

        Clamping means that crediting a peer already at 1.0 applies nothing
        and debiting a peer at 0.05 by 0.1 only applies 0.05; callers that
        need symmetric settlement (the lending audit) use the returned value.
        """
        before = self.value
        self.value = _clamp(self.value + delta)
        self.adjustments += 1
        self.last_update = time
        return self.value - before

    def snapshot(self) -> dict[str, float]:
        """Return a plain-dict copy (used by churn migration and persistence)."""
        return {
            "value": self.value,
            "reports": self.reports,
            "adjustments": self.adjustments,
            "last_update": self.last_update,
            "seeded": self.seeded,
        }

    @classmethod
    def from_snapshot(cls, data: dict[str, float]) -> "ReputationRecord":
        """Rebuild a record from :meth:`snapshot` output."""
        return cls(
            value=float(data["value"]),
            reports=int(data["reports"]),
            adjustments=int(data["adjustments"]),
            last_update=float(data["last_update"]),
            seeded=bool(data.get("seeded", False)),
        )


@dataclass
class ScoreManager:
    """The reputation/credibility state one manager peer maintains."""

    manager_id: PeerId
    initial_credibility: float = 0.5
    credibility_gain: float = 0.1
    opinion_smoothing: float = 0.3
    use_credibility: bool = True
    use_quality: bool = True
    credibility: CredibilityTable = field(init=False)
    _records: dict[PeerId, ReputationRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.credibility = CredibilityTable(
            initial_credibility=self.initial_credibility, gain=self.credibility_gain
        )

    # ------------------------------------------------------------------ #
    # Queries                                                              #
    # ------------------------------------------------------------------ #
    def has_record(self, subject: PeerId) -> bool:
        """Whether this manager stores any reputation for ``subject``."""
        return subject in self._records

    def reputation_of(self, subject: PeerId) -> float | None:
        """Stored reputation of ``subject`` or ``None`` when unknown."""
        record = self._records.get(subject)
        if record is None:
            return None
        return record.value

    def record_for(self, subject: PeerId) -> ReputationRecord:
        """Return (creating if needed) the record for ``subject``."""
        record = self._records.get(subject)
        if record is None:
            record = ReputationRecord()
            self._records[subject] = record
        return record

    def tracked_subjects(self) -> list[PeerId]:
        """Subjects with a record at this manager."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ #
    # Updates                                                              #
    # ------------------------------------------------------------------ #
    def receive_report(self, report: FeedbackReport) -> float:
        """Process a feedback report; return the subject's new reputation.

        This is the hottest loop of the ROCQ backend — every transaction
        delivers two reports to ~``numSM`` managers each — so the reporter's
        credibility record is fetched once and reused for both the weight
        lookup and the post-update credibility adjustment, and the
        :meth:`ReputationRecord.apply_report` / credibility-update arithmetic
        is inlined (same operations in the same order, so results stay
        bit-identical with the method-call path).
        """
        records = self._records
        subject = report.subject
        record = records.get(subject)
        if record is None:
            record = ReputationRecord()
            records[subject] = record
        credibility_table = self.credibility
        reporter = report.reporter
        cred = credibility_table._records.get(reporter)
        weight = self.opinion_smoothing
        if self.use_credibility:
            weight *= (
                cred.value if cred is not None else credibility_table.initial_credibility
            )
        if self.use_quality:
            quality = report.quality
            weight *= quality if quality > 0.05 else 0.05
        # Inlined ReputationRecord.apply_report(report.value, weight, time).
        report_value = report.value
        if weight > 1.0:
            weight = 1.0
        elif weight < 0.0:
            weight = 0.0
        if record.reports == 0 and record.adjustments == 0 and not record.seeded:
            # First evidence with no prior: adopt the reported value outright
            # (see apply_report for the rationale).
            value = report_value
        else:
            value = (1.0 - weight) * record.value + weight * report_value
        if value < 0.0:
            value = 0.0
        elif value > 1.0:
            value = 1.0
        record.value = value
        record.reports += 1
        record.last_update = report.time
        # Credibility is updated against the post-update aggregate so a lone
        # honest report about an unknown subject is not self-penalising
        # (inlined CredibilityRecord.update).
        if cred is None:
            cred = CredibilityRecord(value=credibility_table.initial_credibility)
            credibility_table._records[reporter] = cred
        agreement = 1.0 - abs(report_value - value)
        if agreement < 0.0:
            agreement = 0.0
        elif agreement > 1.0:
            agreement = 1.0
        gain = credibility_table.gain
        cred.value = (1.0 - gain) * cred.value + gain * agreement
        cred.reports += 1
        return value

    def receive_reports(self, reports: list[FeedbackReport]) -> None:
        """Process a batch of reports addressed to this manager, in order.

        The batched form of :meth:`receive_report`: the credibility table and
        the configuration flags are resolved once for the whole batch rather
        than once per report, and the per-subject record is fetched once per
        ``(manager, subject)`` group.  Arithmetic and update order match the
        one-at-a-time path exactly, so results are bit-identical.
        """
        credibility = self.credibility
        use_credibility = self.use_credibility
        use_quality = self.use_quality
        smoothing = self.opinion_smoothing
        records = self._records
        record: ReputationRecord | None = None
        record_subject: PeerId | None = None
        for report in reports:
            subject = report.subject
            if record is None or subject != record_subject:
                record = records.get(subject)
                if record is None:
                    record = ReputationRecord()
                    records[subject] = record
                record_subject = subject
            weight = smoothing
            if use_credibility:
                weight *= credibility.credibility_of(report.reporter)
            if use_quality:
                weight *= max(report.quality, 0.05)
            record.apply_report(report.value, weight, report.time)
            credibility.update(report.reporter, report.value, record.value)

    def receive_adjustment(self, adjustment: ReputationAdjustment) -> float:
        """Apply a direct adjustment; return the amount actually applied."""
        record = self.record_for(adjustment.subject)
        return record.apply_adjustment(adjustment.delta, adjustment.time)

    def set_reputation(self, subject: PeerId, value: float, time: float = 0.0) -> None:
        """Overwrite the stored reputation (bootstrap of founding members)."""
        record = self.record_for(subject)
        record.value = _clamp(value)
        record.last_update = time
        record.seeded = True

    # ------------------------------------------------------------------ #
    # Churn support                                                        #
    # ------------------------------------------------------------------ #
    def export_record(self, subject: PeerId) -> dict[str, float] | None:
        """Snapshot a record for migration to another manager."""
        record = self._records.get(subject)
        if record is None:
            return None
        return record.snapshot()

    def install_record(self, subject: PeerId, snapshot: dict[str, float]) -> None:
        """Install a migrated record, keeping the freshest copy on conflict."""
        incoming = ReputationRecord.from_snapshot(snapshot)
        existing = self._records.get(subject)
        if existing is None or incoming.last_update >= existing.last_update:
            self._records[subject] = incoming

    def drop_all(self) -> None:
        """Forget everything (the manager left or crashed)."""
        self._records.clear()
