"""Exception hierarchy for the reputation-lending reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration problems from protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A simulation or system parameter is out of its legal range."""


class UnknownPeerError(ReproError):
    """An operation referenced a peer identifier that is not registered."""

    def __init__(self, peer_id: int) -> None:
        super().__init__(f"unknown peer id: {peer_id!r}")
        self.peer_id = peer_id


class DuplicateIntroductionError(ReproError):
    """A new peer obtained (or requested) more than one concurrent introduction.

    The paper treats this as an attempt to gain unfair advantage: the score
    managers reset the offender's reputation to zero and may flag it as
    malicious.  The library signals the condition with this exception so the
    admission layer can apply the punishment.
    """

    def __init__(self, peer_id: int) -> None:
        super().__init__(
            f"peer {peer_id!r} received multiple concurrent introductions"
        )
        self.peer_id = peer_id


class IntroductionRefusedError(ReproError):
    """An introduction request was refused by the prospective introducer."""

    def __init__(self, introducer_id: int, applicant_id: int, reason: str) -> None:
        super().__init__(
            f"introducer {introducer_id} refused applicant {applicant_id}: {reason}"
        )
        self.introducer_id = introducer_id
        self.applicant_id = applicant_id
        self.reason = reason


class InsufficientReputationError(ReproError):
    """An introducer's reputation is below the minimum required to lend."""

    def __init__(self, introducer_id: int, reputation: float, required: float) -> None:
        super().__init__(
            f"introducer {introducer_id} has reputation {reputation:.4f} "
            f"but {required:.4f} is required to introduce a peer"
        )
        self.introducer_id = introducer_id
        self.reputation = reputation
        self.required = required


class WaitingPeriodError(ReproError):
    """A new peer issued an introduction request before its waiting period ended."""

    def __init__(self, peer_id: int, ready_at: float, now: float) -> None:
        super().__init__(
            f"peer {peer_id} must wait until t={ready_at:g} before requesting "
            f"another introduction (now t={now:g})"
        )
        self.peer_id = peer_id
        self.ready_at = ready_at
        self.now = now


class PersistenceError(ReproError):
    """A durable-store operation failed or was handed inconsistent state.

    Raised by the :mod:`repro.storage` drivers (unknown driver URL, payload
    that is not valid JSON, digest mismatch after a restore) and by backend
    ``restore_state`` implementations handed a snapshot they cannot apply.
    """


class ProtocolError(ReproError):
    """A message or state transition violated the lending protocol."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class EmptyPopulationError(SimulationError):
    """An operation required at least one eligible peer but none exist."""
