"""State digests: the fingerprints the divergence bisector compares.

Two granularities:

* :func:`engine_state_digest` — one hash over everything mutable the engine
  owns (clock, population, lending ledger, reputation backend state), taken
  after each trace record.  Two runs whose digests first differ at record
  *i* diverged while handling record *i*.
* :func:`stream_state_hashes` — one short hash per named RNG stream, which
  lets the differ name the *stream* that drew differently (e.g. the
  ``transactions`` stream consumed an extra draw) rather than just the
  record index.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from ..reputation.backend import backend_state_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulation

__all__ = ["engine_state_digest", "stream_state_hashes"]


def stream_state_hashes(sim: "Simulation") -> dict[str, str]:
    """Short per-stream hashes of the RNG states created so far.

    numpy generator state is a nested dict of ints/arrays whose ``repr`` is
    deterministic for a given state, so hashing the repr detects any
    difference in draw counts or positions.
    """
    hashes: dict[str, str] = {}
    for name in sim.streams.names():
        state = sim.streams.stream(name).bit_generator.state
        digest = hashlib.sha1(repr(state).encode("utf-8"), usedforsecurity=False)
        hashes[name] = digest.hexdigest()[:12]
    return hashes


def engine_state_digest(sim: "Simulation") -> str:
    """Hash of the engine's mutable state at the current instant."""
    parts = hashlib.sha256()
    parts.update(f"t{sim.clock.now!r}".encode("ascii"))
    parts.update(("|a" + ",".join(map(str, sim.population.active_ids))).encode("ascii"))
    waiting = sorted(peer.peer_id for peer in sim.population.waiting_peers())
    parts.update(("|w" + ",".join(map(str, waiting))).encode("ascii"))
    parts.update(f"|n{len(sim.population)}".encode("ascii"))
    stats = sim.lending.stats
    parts.update(
        (
            f"|l{stats.introductions_granted},{stats.audits_passed},"
            f"{stats.audits_failed},{stats.total_reputation_lent!r},"
            f"{stats.total_rewards_paid!r},{stats.total_stakes_lost!r},"
            f"{stats.sanctions_applied}"
        ).encode("ascii")
    )
    for contract in sorted(
        sim.lending.outstanding_contracts(), key=lambda c: c.entrant
    ):
        parts.update(
            (
                f"|o{contract.entrant}:{contract.introducer}:"
                f"{contract.amount!r}:{contract.transactions_until_audit}"
            ).encode("ascii")
        )
    parts.update(("|b" + backend_state_digest(sim.store)).encode("ascii"))
    return parts.hexdigest()
