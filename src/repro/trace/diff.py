"""The divergence bisector: where did two runs of one trace part ways?

Given two traces (typically the original recording and a re-recorded
replay), :func:`first_divergence` reports the first record index at which
they differ — and *what* differs there: the event kind or time (the
schedules diverged), the payload (the same event was handled differently),
a per-stream RNG hash (that stream consumed different draws — usually the
most precise culprit), or the state digest (the handlers mutated state
differently).  A golden-digest mismatch thus turns into an exact event
index instead of a shrug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .log import TraceLog, TraceRecord

__all__ = ["TraceDivergence", "first_divergence", "diff_traces"]


@dataclass(frozen=True)
class TraceDivergence:
    """One point of disagreement between two traces.

    ``index`` is the trace record index (-1 for whole-trace fields like the
    footer digests); ``field`` names what differs (``kind``, ``time``,
    ``payload``, ``state_digest``, ``stream:<name>``, ``length``,
    ``final_state_digest``, ``summary_digest``).
    """

    index: int
    field: str
    a: Any
    b: Any

    def describe(self) -> str:
        where = "footer" if self.index < 0 else f"record {self.index}"
        return f"{where} {self.field}: {self.a!r} != {self.b!r}"


def _record_divergences(
    index: int, a: TraceRecord, b: TraceRecord
) -> list[TraceDivergence]:
    found = []
    if a.kind != b.kind:
        found.append(TraceDivergence(index, "kind", a.kind, b.kind))
    if a.time != b.time:
        found.append(TraceDivergence(index, "time", a.time, b.time))
    if a.payload != b.payload:
        found.append(TraceDivergence(index, "payload", a.payload, b.payload))
    # Stream hashes pinpoint *which* randomness source diverged.
    for name in sorted(set(a.streams) & set(b.streams)):
        if a.streams[name] != b.streams[name]:
            found.append(
                TraceDivergence(
                    index, f"stream:{name}", a.streams[name], b.streams[name]
                )
            )
    # Digests are only comparable when both sides recorded one (the two
    # traces may use different digest_every cadences).
    if a.state_digest and b.state_digest and a.state_digest != b.state_digest:
        found.append(
            TraceDivergence(index, "state_digest", a.state_digest, b.state_digest)
        )
    return found


def diff_traces(
    a: TraceLog, b: TraceLog, limit: int | None = None
) -> list[TraceDivergence]:
    """All divergences between two traces, in record order.

    ``limit`` caps how many are collected (the first one is what matters
    for bisection; the rest are context).  An empty list means the traces
    are equivalent at trace granularity.
    """
    found: list[TraceDivergence] = []

    def full() -> bool:
        return limit is not None and len(found) >= limit

    for index in range(min(len(a.records), len(b.records))):
        found.extend(_record_divergences(index, a.records[index], b.records[index]))
        if full():
            return found[:limit]
    if len(a.records) != len(b.records):
        found.append(
            TraceDivergence(
                min(len(a.records), len(b.records)),
                "length",
                len(a.records),
                len(b.records),
            )
        )
    if (
        a.final_state_digest
        and b.final_state_digest
        and a.final_state_digest != b.final_state_digest
    ):
        found.append(
            TraceDivergence(
                -1, "final_state_digest", a.final_state_digest, b.final_state_digest
            )
        )
    if a.summary_digest and b.summary_digest and a.summary_digest != b.summary_digest:
        found.append(
            TraceDivergence(-1, "summary_digest", a.summary_digest, b.summary_digest)
        )
    if limit is not None:
        return found[:limit]
    return found


def first_divergence(a: TraceLog, b: TraceLog) -> TraceDivergence | None:
    """The first point where two traces disagree (``None`` if equivalent)."""
    divergences = diff_traces(a, b, limit=1)
    return divergences[0] if divergences else None
