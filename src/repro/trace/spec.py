"""The trace facet of a run request.

A :class:`TraceSpec` says *what the trace engine should do* for one run:
record the event trace to a file, or replay a previously recorded trace
(optionally re-recording the replayed run for later diffing).  It is the
value carried by ``RunRequest.trace`` and accepts the same shorthand
mappings the CLI and JSON request documents use::

    TraceSpec.parse({"record": "runs/baseline.trace.jsonl"})
    TraceSpec.parse({"replay": "runs/baseline.trace.jsonl"})
    TraceSpec.parse({"mode": "replay", "path": "...", "record_to": "..."})

This module stays below the API layer: validation failures raise plain
:class:`~repro.errors.ConfigurationError`; the API layer translates missing
trace files into did-you-mean :class:`~repro.api.errors.UnknownNameError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ConfigurationError

__all__ = ["TraceSpec", "TRACE_MODES"]

#: The two things a trace spec can ask for.
TRACE_MODES = ("record", "replay")


@dataclass(frozen=True)
class TraceSpec:
    """What the trace engine should do for one run.

    Attributes
    ----------
    mode:
        ``"record"`` (capture this run's event trace to ``path``) or
        ``"replay"`` (re-inject the trace stored at ``path``).
    path:
        The trace file: destination when recording, source when replaying.
    record_to:
        Replay only — also record the *replayed* run's trace to this path,
        so the two traces can be bisected with ``repro trace diff``.
    digest_every:
        Capture a full state digest every N trace records (1 = every
        record, the most precise bisection; larger values trade precision
        for smaller trace files).
    """

    mode: str
    path: str
    record_to: str | None = None
    digest_every: int = 1

    def __post_init__(self) -> None:
        if self.mode not in TRACE_MODES:
            raise ConfigurationError(
                f"trace mode must be one of {TRACE_MODES}, got {self.mode!r}"
            )
        if not self.path:
            raise ConfigurationError("trace path must be a non-empty string")
        object.__setattr__(self, "path", str(self.path))
        if self.record_to is not None:
            if self.mode != "replay":
                raise ConfigurationError(
                    "trace record_to is only meaningful when replaying "
                    "(a record request already writes to 'path')"
                )
            object.__setattr__(self, "record_to", str(self.record_to))
        if int(self.digest_every) < 1:
            raise ConfigurationError(
                f"trace digest_every must be >= 1, got {self.digest_every}"
            )
        object.__setattr__(self, "digest_every", int(self.digest_every))

    # ------------------------------------------------------------------ #
    # Parsing / serialisation                                              #
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, value: "TraceSpec | Mapping[str, Any] | None") -> "TraceSpec | None":
        """Normalise the accepted spellings of a trace spec.

        ``None`` passes through (no tracing); an existing spec is returned
        unchanged; a mapping may use the ``{"record": path}`` / ``{"replay":
        path}`` shorthands or the explicit ``{"mode", "path", ...}`` form.
        """
        if value is None or isinstance(value, TraceSpec):
            return value
        if not isinstance(value, Mapping):
            raise ConfigurationError(
                "trace must be a mapping like {'record': PATH} or "
                f"{{'replay': PATH}}, got {type(value).__name__}"
            )
        fields = dict(value)
        shorthand = [mode for mode in TRACE_MODES if mode in fields]
        if len(shorthand) > 1:
            raise ConfigurationError(
                "trace cannot both record and replay; pass exactly one of "
                "'record' and 'replay'"
            )
        if shorthand:
            mode = shorthand[0]
            if "mode" in fields or "path" in fields:
                raise ConfigurationError(
                    f"trace shorthand {mode!r} cannot be combined with "
                    "explicit 'mode'/'path' keys"
                )
            fields["mode"] = mode
            fields["path"] = fields.pop(mode)
        unknown = set(fields) - {"mode", "path", "record_to", "digest_every"}
        if unknown:
            raise ConfigurationError(
                f"unknown trace field(s) {sorted(unknown)}; expected "
                "'record'/'replay' shorthand or mode/path/record_to/"
                "digest_every"
            )
        if "mode" not in fields or "path" not in fields:
            raise ConfigurationError(
                "trace needs a mode and a path; use {'record': PATH} or "
                "{'replay': PATH}"
            )
        return cls(**fields)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (accepted back by :meth:`parse`)."""
        document: dict[str, Any] = {"mode": self.mode, "path": self.path}
        if self.record_to is not None:
            document["record_to"] = self.record_to
        if self.digest_every != 1:
            document["digest_every"] = self.digest_every
        return document
