"""The versioned on-disk trace format.

A trace is a JSON-lines file:

* line 1 — a **header** object: format marker, version, master seed, the
  full parameter document and the digest cadence;
* one line per **record**: ``{"i": index, "t": time, "k": kind, "p":
  payload}`` plus, on digest lines, ``"d"`` (engine state digest) and
  ``"s"`` (per-stream RNG state hashes);
* last line — a **footer**: record count, final state digest and the run's
  summary digest.

JSON floats round-trip exactly (``json`` serialises via ``repr`` and
parses via ``float``), so replaying recorded event times reproduces the
original schedule bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..config import SimulationParameters
from ..errors import ConfigurationError

__all__ = [
    "TRACE_FORMAT",
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "TraceTruncatedError",
    "TraceRecord",
    "TraceHeader",
    "TraceLog",
    "load_trace_header",
    "trace_file_digest",
]

#: Format marker written into every header line.
TRACE_FORMAT = "repro-trace"

#: Current trace format version; readers reject anything newer.
TRACE_FORMAT_VERSION = 1


class TraceFormatError(ConfigurationError):
    """A trace file is malformed, truncated, or from a newer format."""


class TraceTruncatedError(TraceFormatError):
    """A trace file ends without its footer line.

    Distinct from other format errors (wrong marker, unsupported version,
    malformed lines) so callers can tell "the recording run never finished
    or the file was cut short" apart from "this is not a trace this build
    can read".  :meth:`TraceLog.save` writes atomically (temp file +
    ``os.replace``), so a crash mid-save leaves the previous complete file
    — a truncated trace therefore points at the *recording* run, not at a
    torn write.
    """


@dataclass(frozen=True)
class TraceRecord:
    """One line of a trace: an engine event or the transaction slot."""

    index: int
    time: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    state_digest: str = ""
    streams: dict[str, str] = field(default_factory=dict)

    def to_line(self) -> dict[str, Any]:
        """Compact JSON object for one trace line."""
        line: dict[str, Any] = {
            "i": self.index,
            "t": self.time,
            "k": self.kind,
            "p": self.payload,
        }
        if self.state_digest:
            line["d"] = self.state_digest
        if self.streams:
            line["s"] = self.streams
        return line

    @classmethod
    def from_line(cls, line: dict[str, Any]) -> "TraceRecord":
        try:
            return cls(
                index=int(line["i"]),
                time=float(line["t"]),
                kind=str(line["k"]),
                payload=dict(line.get("p") or {}),
                state_digest=str(line.get("d", "")),
                streams=dict(line.get("s") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace record line: {line!r}") from exc


@dataclass(frozen=True)
class TraceHeader:
    """The cheaply readable first line of a trace file."""

    version: int
    seed: int
    params: dict[str, Any]
    digest_every: int = 1
    #: Streams fed from a trace rather than drawn live (replay recordings).
    #: Their RNG states are meaningless and are not hashed or diffed.
    pinned_streams: tuple[str, ...] = ()

    @property
    def scheme(self) -> str:
        """The reputation scheme the trace was recorded under."""
        return str(self.params.get("reputation_scheme", "rocq"))

    def parameters(self) -> SimulationParameters:
        """Rebuild the recorded run's parameters."""
        return SimulationParameters.from_dict(self.params)

    def to_line(self) -> dict[str, Any]:
        line = {
            "format": TRACE_FORMAT,
            "version": self.version,
            "seed": self.seed,
            "digest_every": self.digest_every,
            "params": self.params,
        }
        if self.pinned_streams:
            line["pinned_streams"] = list(self.pinned_streams)
        return line

    @classmethod
    def from_line(cls, line: dict[str, Any]) -> "TraceHeader":
        if line.get("format") != TRACE_FORMAT:
            raise TraceFormatError(
                f"not a {TRACE_FORMAT} file (format={line.get('format')!r})"
            )
        version = int(line.get("version", 0))
        if version < 1 or version > TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version} "
                f"(this build reads versions 1..{TRACE_FORMAT_VERSION})"
            )
        try:
            return cls(
                version=version,
                seed=int(line["seed"]),
                params=dict(line["params"]),
                digest_every=int(line.get("digest_every", 1)),
                pinned_streams=tuple(line.get("pinned_streams") or ()),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace header: {line!r}") from exc


@dataclass
class TraceLog:
    """A fully loaded (or freshly recorded) event trace."""

    seed: int
    params: dict[str, Any]
    digest_every: int = 1
    version: int = TRACE_FORMAT_VERSION
    pinned_streams: tuple[str, ...] = ()
    records: list[TraceRecord] = field(default_factory=list)
    final_state_digest: str = ""
    summary_digest: str = ""

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    @property
    def header(self) -> TraceHeader:
        return TraceHeader(
            version=self.version,
            seed=self.seed,
            params=self.params,
            digest_every=self.digest_every,
            pinned_streams=tuple(self.pinned_streams),
        )

    @property
    def scheme(self) -> str:
        return self.header.scheme

    def parameters(self) -> SimulationParameters:
        """Rebuild the recorded run's parameters."""
        return self.header.parameters()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def arrival_records(self) -> list[TraceRecord]:
        """The exogenous arrival events, in trace order."""
        return [record for record in self.records if record.kind == "arrival"]

    # ------------------------------------------------------------------ #
    # Persistence                                                          #
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the trace as JSON lines, creating parent directories.

        The write is atomic (temp file in the same directory +
        ``os.replace``), mirroring
        :meth:`repro.analysis.storage.ResultStore.save_json`: a crash (or a
        serialisation error) mid-save can never leave a torn, footer-less
        file behind — readers observe either the previous complete trace or
        the new one, and the temp file is unlinked on failure.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        temp_path = target.with_name(f"{target.name}.tmp-{os.getpid()}-{id(self)}")
        try:
            with temp_path.open("w", encoding="utf-8") as handle:
                handle.write(json.dumps(self.header.to_line(), sort_keys=True))
                handle.write("\n")
                for record in self.records:
                    handle.write(json.dumps(record.to_line(), sort_keys=True))
                    handle.write("\n")
                footer = {
                    "end": True,
                    "records": len(self.records),
                    "final_state_digest": self.final_state_digest,
                    "summary_digest": self.summary_digest,
                }
                handle.write(json.dumps(footer, sort_keys=True))
                handle.write("\n")
            os.replace(temp_path, target)
        finally:
            temp_path.unlink(missing_ok=True)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "TraceLog":
        """Read a trace file back; raises :class:`TraceFormatError` when
        the file is not a (complete) trace of a readable version, and
        :class:`FileNotFoundError` when it does not exist."""
        source = Path(path)
        with source.open("r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise TraceFormatError(f"{source}: empty trace file")
        header = TraceHeader.from_line(_parse_line(source, lines[0]))
        records: list[TraceRecord] = []
        footer: dict[str, Any] | None = None
        for raw in lines[1:]:
            line = _parse_line(source, raw)
            if line.get("end"):
                footer = line
                break
            records.append(TraceRecord.from_line(line))
        if footer is None:
            raise TraceTruncatedError(
                f"{source}: truncated trace (no footer); the recording run "
                "probably did not finish"
            )
        if int(footer.get("records", -1)) != len(records):
            raise TraceFormatError(
                f"{source}: footer announces {footer.get('records')} records "
                f"but {len(records)} were read"
            )
        return cls(
            seed=header.seed,
            params=header.params,
            digest_every=header.digest_every,
            version=header.version,
            pinned_streams=header.pinned_streams,
            records=records,
            final_state_digest=str(footer.get("final_state_digest", "")),
            summary_digest=str(footer.get("summary_digest", "")),
        )


def _parse_line(source: Path, raw: str) -> dict[str, Any]:
    try:
        line = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{source}: not valid JSON lines: {exc}") from exc
    if not isinstance(line, dict):
        raise TraceFormatError(f"{source}: trace lines must be objects")
    return line


def load_trace_header(path: str | Path) -> TraceHeader:
    """Read only the header line of a trace file (cheap existence +
    format + parameter check without loading every event)."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for raw in handle:
            if raw.strip():
                return TraceHeader.from_line(_parse_line(source, raw))
    raise TraceFormatError(f"{source}: empty trace file")


def trace_file_digest(path: str | Path) -> str:
    """Content hash of a trace file (identifies the trace in fingerprints)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()
