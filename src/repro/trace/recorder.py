"""The trace recorder: an engine tracer that captures every dispatch.

Attach a :class:`TraceRecorder` to a :class:`~repro.sim.engine.Simulation`
(via :meth:`~repro.sim.engine.Simulation.attach_tracer`) and run it; the
recorder builds a :class:`~repro.trace.log.TraceLog` with one record per
setup, dispatched event and transaction slot.  Peers created while handling
a record (arrivals, sybil injections, whitewash rebirths) are attributed to
that record by watching the id allocator, so the replayer can rebuild the
exact arrival workload without the engine knowing anything about traces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.admission import AdmissionRequest
from ..core.policies import SelectivePolicy
from ..metrics.summary import RunSummary, summary_digest
from ..sim.engine import Simulation
from ..sim.events import Event, EventKind
from ..sim.transactions import TransactionOutcome
from .digest import engine_state_digest, stream_state_hashes
from .log import TRACE_FORMAT_VERSION, TraceLog, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SimulationParameters

__all__ = ["TraceRecorder", "record_simulation"]


class TraceRecorder:
    """Captures an engine run into a :class:`TraceLog`.

    ``digest_every`` thins the expensive state digests: a digest (and the
    per-stream RNG hashes) is taken on every N-th record.  The event payload
    itself is always recorded, so even undigested records still diff on
    payload mismatches.
    """

    def __init__(
        self, digest_every: int = 1, pinned_streams: tuple[str, ...] = ()
    ) -> None:
        if digest_every < 1:
            raise ValueError(f"digest_every must be >= 1, got {digest_every}")
        self.digest_every = digest_every
        # Streams fed from a trace (replay runs): their RNG state carries no
        # information, so their hashes are neither recorded nor diffed.
        self.pinned_streams = tuple(pinned_streams)
        self.log: TraceLog | None = None
        self._index = 0
        self._next_peer_id = 0

    # ------------------------------------------------------------------ #
    # Engine tracer protocol                                               #
    # ------------------------------------------------------------------ #
    def on_setup(self, sim: Simulation) -> None:
        self.log = TraceLog(
            seed=sim.seed,
            params=sim.params.to_dict(),
            digest_every=self.digest_every,
            version=TRACE_FORMAT_VERSION,
            pinned_streams=self.pinned_streams,
        )
        self._index = 0
        self._next_peer_id = sim.population.allocator.next_id
        payload = {
            "peers": self._next_peer_id,
            "active": sim.population.count_active(),
        }
        self._append(sim, time=0.0, kind="setup", payload=payload)

    def on_event(self, sim: Simulation, event: Event) -> None:
        payload = self._event_payload(sim, event)
        new_peers = self._drain_new_peers(sim)
        if new_peers:
            payload["new_peers"] = new_peers
        self._append(sim, time=event.time, kind=event.kind.value, payload=payload)

    def on_transaction(
        self, sim: Simulation, now: float, outcome: TransactionOutcome | None
    ) -> None:
        if outcome is None:
            payload: dict[str, Any] = {}
        else:
            payload = {
                "requester": outcome.requester,
                "respondent": outcome.respondent,
                "served": outcome.served,
                "rq": outcome.requester_satisfied,
                "rp": outcome.respondent_satisfied,
            }
        self._append(sim, time=now, kind="transaction", payload=payload)

    def on_finalize(self, sim: Simulation) -> None:
        assert self.log is not None
        self.log.final_state_digest = engine_state_digest(sim)

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _append(
        self, sim: Simulation, time: float, kind: str, payload: dict[str, Any]
    ) -> None:
        assert self.log is not None, "on_setup must run before any record"
        digest = ""
        streams: dict[str, str] = {}
        if self._index % self.digest_every == 0:
            digest = engine_state_digest(sim)
            streams = stream_state_hashes(sim)
            for pinned in self.pinned_streams:
                streams.pop(pinned, None)
        self.log.records.append(
            TraceRecord(
                index=self._index,
                time=time,
                kind=kind,
                payload=payload,
                state_digest=digest,
                streams=streams,
            )
        )
        self._index += 1

    def _drain_new_peers(self, sim: Simulation) -> list[dict[str, Any]]:
        """Describe every peer allocated since the previous record."""
        allocator = sim.population.allocator
        documents = []
        for peer_id in range(self._next_peer_id, allocator.next_id):
            peer = sim.population.get(peer_id)
            policy = peer.introducer_policy
            document: dict[str, Any] = {
                "id": peer_id,
                "kind": peer.behavior.kind.value,
                "sq": peer.behavior.service_quality,
                "policy": None if policy is None else policy.name,
            }
            if isinstance(policy, SelectivePolicy):
                document["err"] = policy.error_rate
            documents.append(document)
        self._next_peer_id = allocator.next_id
        return documents

    def _event_payload(self, sim: Simulation, event: Event) -> dict[str, Any]:
        if event.kind == EventKind.ADMISSION_RESPONSE and isinstance(
            event.payload, AdmissionRequest
        ):
            request = event.payload
            return {
                "applicant": request.applicant,
                "introducer": request.introducer,
                "accepted": request.accepted,
            }
        if event.kind == EventKind.DEPARTURE:
            return {"peer": int(event.payload)}
        return {}


def record_simulation(
    params: "SimulationParameters",
    seed: int | None = None,
    digest_every: int = 1,
) -> tuple[RunSummary, TraceLog]:
    """Run one simulation while recording its full event trace."""
    sim = Simulation(params, seed=seed)
    recorder = TraceRecorder(digest_every=digest_every)
    sim.attach_tracer(recorder)
    summary = sim.run()
    log = recorder.log
    assert log is not None  # on_setup always ran
    log.summary_digest = summary_digest(summary)
    return summary, log
