"""The trace replayer: re-inject a recorded arrival workload.

What replay pins down is the **exogenous** workload — the arrival times and
each arrival's ground-truth behaviour and introducer policy, exactly as
recorded.  Everything *endogenous* (admission decisions, transactions,
sampling, adversary actions) runs live against whatever scheme/knobs the
replay was configured with:

* replaying under the **same** parameters and seed reproduces the original
  run bit-for-bit (named RNG streams are independent, so skipping the
  arrival/behaviour draws perturbs nothing else);
* replaying under a **different** scheme (or knob set) answers the paper's
  A/B question exactly: same community, same workload, different rules.

The replayer swaps the engine's arrival process and arrival factory for
trace-fed stand-ins; the engine itself is unmodified and unaware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.policies import (
    IntroducerPolicy,
    NaivePolicy,
    RefusingPolicy,
    SelectivePolicy,
)
from ..metrics.summary import RunSummary, summary_digest
from ..peers.behavior import BehaviorKind, BehaviorModel, make_behavior
from ..peers.peer import Peer
from ..sim.arrivals import ArrivalFactory
from ..sim.engine import Simulation
from .log import TraceFormatError, TraceLog, TraceRecord
from .recorder import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SimulationParameters

__all__ = [
    "build_replay_simulation",
    "replay_simulation",
    "TraceArrivalProcess",
    "TraceArrivalFactory",
]


class _ArrivalFeed:
    """Shared cursor over the recorded arrivals.

    The engine asks the arrival process *when* the next arrival happens and,
    on handling that event, asks the factory to create the peer; both sides
    must stay in lockstep, so they share this cursor.
    """

    def __init__(self, records: list[TraceRecord]) -> None:
        self._arrivals: list[tuple[float, dict]] = []
        for record in records:
            peers = record.payload.get("new_peers") or []
            if len(peers) != 1:
                raise TraceFormatError(
                    f"arrival record {record.index} created {len(peers)} peers; "
                    "a well-formed trace has exactly one peer per arrival"
                )
            self._arrivals.append((record.time, peers[0]))
        self._cursor = 0

    def peek_time(self) -> float:
        """Time of the next unreplayed arrival (``inf`` when exhausted)."""
        if self._cursor >= len(self._arrivals):
            return float("inf")
        return self._arrivals[self._cursor][0]

    def take(self, time: float) -> dict:
        """Consume the next arrival, which must be scheduled for ``time``."""
        if self._cursor >= len(self._arrivals):
            raise TraceFormatError(
                f"replay requested an arrival at t={time} but the trace has "
                "no arrivals left"
            )
        recorded_time, document = self._arrivals[self._cursor]
        if recorded_time != time:
            raise TraceFormatError(
                f"replay asked for an arrival at t={time} but the next "
                f"recorded arrival is at t={recorded_time}"
            )
        self._cursor += 1
        return document

    @property
    def consumed(self) -> int:
        return self._cursor

    def __len__(self) -> int:
        return len(self._arrivals)


@dataclass
class TraceArrivalProcess:
    """Drop-in for :class:`~repro.sim.arrivals.PoissonArrivalProcess` that
    schedules exactly the recorded arrival times (no RNG draws)."""

    feed: _ArrivalFeed

    def next_arrival_after(self, time: float) -> float:
        return self.feed.peek_time()

    @property
    def arrivals_generated(self) -> int:
        return self.feed.consumed


@dataclass
class TraceArrivalFactory:
    """Drop-in for :class:`~repro.sim.arrivals.ArrivalFactory` that rebuilds
    each recorded arrival instead of drawing behaviour/policy."""

    feed: _ArrivalFeed
    inner: ArrivalFactory

    def create_arrival(self, time: float) -> Peer:
        document = self.feed.take(time)
        return self.inner.population.create_peer(
            behavior=_rebuild_behavior(document),
            introducer_policy=_rebuild_policy(document),
            is_founder=False,
            arrived_at=time,
        )

    def create_founder(self) -> Peer:
        # Founders are part of the simulated *configuration*, not the
        # workload: they draw live (the draws happen before any skipped
        # arrival draw, so same-seed replays see identical founders).
        return self.inner.create_founder()


def _rebuild_behavior(document: dict) -> BehaviorModel:
    try:
        kind = BehaviorKind(document["kind"])
        quality = float(document["sq"])
    except (KeyError, ValueError) as exc:
        raise TraceFormatError(f"malformed arrival record: {document!r}") from exc
    return make_behavior(
        kind, cooperative_quality=quality, uncooperative_quality=quality
    )


def _rebuild_policy(document: dict) -> IntroducerPolicy | None:
    name = document.get("policy")
    if name is None:
        return None
    if name == "naive":
        return NaivePolicy()
    if name == "selective":
        return SelectivePolicy(error_rate=float(document.get("err", 0.1)))
    if name == "refusing":
        return RefusingPolicy()
    raise TraceFormatError(f"unknown introducer policy in trace: {name!r}")


def build_replay_simulation(
    log: TraceLog,
    params: "SimulationParameters | None" = None,
    seed: int | None = None,
) -> Simulation:
    """Build a simulation that replays ``log``'s arrival workload.

    ``params`` defaults to the recorded parameters (exact reproduction);
    pass modified parameters — a different scheme, knob set or adversary —
    for an A/B replay of the same workload.  ``seed`` defaults to the
    recorded master seed.  A horizon shorter than the recording simply
    leaves late arrivals unreplayed; a longer one runs out of arrivals and
    sees none past the recorded window.
    """
    resolved = log.parameters() if params is None else params
    master_seed = log.seed if seed is None else seed
    sim = Simulation(resolved, seed=master_seed)
    feed = _ArrivalFeed(log.arrival_records())
    sim.arrivals = TraceArrivalProcess(feed)
    sim.factory = TraceArrivalFactory(feed=feed, inner=sim.factory)
    return sim


def replay_simulation(
    log: TraceLog,
    params: "SimulationParameters | None" = None,
    seed: int | None = None,
    record: bool = False,
    digest_every: int = 1,
    shards: int = 1,
    epoch_length: int | None = None,
) -> tuple[RunSummary, TraceLog | None]:
    """Replay a recorded trace; optionally record the replayed run too.

    Returns ``(summary, new_log)`` where ``new_log`` is the replayed run's
    own trace when ``record`` is true (for bisection against the original)
    and ``None`` otherwise.  ``shards > 1`` drives the replay-fed engine
    through the sharded epoch loop (:mod:`repro.sim.sharded`) — bit-identical
    output, so a recorded trace is also a fixture for the sharded path.
    """
    sim = build_replay_simulation(log, params=params, seed=seed)
    recorder: TraceRecorder | None = None
    if record:
        # The arrival schedule and arrival behaviour come from the trace, so
        # those streams' RNG states are pinned: not hashed, not diffed.
        recorder = TraceRecorder(
            digest_every=digest_every, pinned_streams=("arrivals", "behaviour")
        )
        sim.attach_tracer(recorder)
    if shards > 1:
        from ..sim.sharded import ShardedSimulation

        summary = ShardedSimulation(
            simulation=sim, shards=shards, epoch_length=epoch_length
        ).run()
    else:
        summary = sim.run()
    new_log: TraceLog | None = None
    if recorder is not None:
        new_log = recorder.log
        assert new_log is not None
        new_log.summary_digest = summary_digest(summary)
    return summary, new_log
