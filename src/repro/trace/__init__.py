"""Trace capture, replay and divergence bisection.

The trace engine turns "the golden digest changed" into "event 1284 was
handled differently, and the ``transactions`` stream drew differently
there":

* :class:`TraceRecorder` / :func:`record_simulation` capture a run's full
  event dispatch — arrivals (with each entrant's ground-truth behaviour),
  admission responses, departures, adversary ticks, every transaction
  slot, plus per-record state digests and per-stream RNG hashes — into a
  versioned JSON-lines :class:`TraceLog`;
* :func:`replay_simulation` re-injects a recorded arrival workload into a
  fresh engine, either with the recorded parameters (bit-identical
  reproduction) or with a different scheme/knob set (exact A/B deltas);
* :func:`diff_traces` / :func:`first_divergence` bisect two traces to the
  first diverging record.

The facet is surfaced through ``RunRequest(trace=...)`` in :mod:`repro.api`
and the ``python -m repro trace`` CLI group.
"""

from .diff import TraceDivergence, diff_traces, first_divergence
from .digest import engine_state_digest, stream_state_hashes
from .log import (
    TRACE_FORMAT,
    TRACE_FORMAT_VERSION,
    TraceFormatError,
    TraceHeader,
    TraceLog,
    TraceRecord,
    TraceTruncatedError,
    load_trace_header,
    trace_file_digest,
)
from .recorder import TraceRecorder, record_simulation
from .replayer import build_replay_simulation, replay_simulation
from .spec import TRACE_MODES, TraceSpec

__all__ = [
    "TRACE_FORMAT",
    "TRACE_FORMAT_VERSION",
    "TRACE_MODES",
    "TraceFormatError",
    "TraceTruncatedError",
    "TraceHeader",
    "TraceLog",
    "TraceRecord",
    "TraceSpec",
    "TraceRecorder",
    "TraceDivergence",
    "record_simulation",
    "build_replay_simulation",
    "replay_simulation",
    "diff_traces",
    "first_divergence",
    "engine_state_digest",
    "stream_state_hashes",
    "load_trace_header",
    "trace_file_digest",
]
