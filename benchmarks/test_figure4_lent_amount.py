"""Bench F4 — Figure 4: counts and refusal reasons vs amount of reputation lent."""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_figure4_lent_amount(benchmark, run_experiment):
    result = run_experiment("figure4", benchmark)
    assert set(result.series) == {
        "Cooperative Peers",
        "Uncooperative Peers",
        "Entry Refused due to Introducer Reputation",
        "Entry Refused to Uncooperative Peer",
    }
    xs = [x for x, _ in result.series["Cooperative Peers"]]
    assert xs[0] == 0.05 and xs[-1] == 0.45
    assert_mostly_passing(result, minimum_fraction=0.5)
