"""Bench F2 — Figure 2: cooperative reputation over time per arrival rate."""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_figure2_reputation_over_time(benchmark, run_experiment):
    result = run_experiment("figure2", benchmark)
    # One curve per arrival rate, every value a valid reputation.
    assert len(result.series) == 8
    for label, points in result.series.items():
        assert label.startswith("Arrival Rate")
        for _, value in points:
            if value == value:  # skip NaN samples
                assert 0.0 <= value <= 1.0
    assert_mostly_passing(result, minimum_fraction=0.6)
