"""Ablation benches for the design choices called out in DESIGN.md.

Each ablation runs the simulator a handful of times with one mechanism
toggled or one constant swept, and prints a comparison table.  The goal is to
show *why* the design is the way it is:

* credibility weighting in ROCQ blunts the badmouthing of uncooperative peers;
* more score managers buy robustness at a (bounded) messaging cost;
* auditing sooner settles stakes faster without letting more freeriders in;
* the lending bootstrap keeps freeriders out where open admission and flat
  initial credit let them all in.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED

from repro.analysis.tables import format_table
from repro.config import BootstrapMode
from repro.metrics.summary import RunSummary
from repro.sim.engine import run_simulation
from repro.workloads.scenarios import laptop_scale


def _base_params():
    return laptop_scale(scale=max(0.02, BENCH_SCALE), seed=BENCH_SEED)


def _run(params) -> RunSummary:
    return run_simulation(params)


def test_ablation_credibility_weighting(benchmark):
    """ROCQ credibility weighting on vs off."""

    def execute():
        rows = {}
        for label, enabled in (("credibility on", True), ("credibility off", False)):
            summary = _run(_base_params().with_overrides(rocq_use_credibility=enabled))
            rows[label] = summary
        return rows

    rows = benchmark.pedantic(execute, rounds=1, iterations=1)
    table = format_table(
        ["variant", "success rate", "final coop reputation", "uncoop admitted"],
        [
            [
                label,
                summary.success_rate,
                summary.cooperative_reputation.finite().last_value(),
                summary.admitted_uncooperative,
            ]
            for label, summary in rows.items()
        ],
    )
    print("\n" + table)
    on = rows["credibility on"]
    off = rows["credibility off"]
    # Credibility weighting must not hurt decision quality.
    assert on.success_rate >= off.success_rate - 0.05
    assert on.cooperative_reputation.finite().last_value() > 0.6


def test_ablation_score_manager_count(benchmark):
    """Number of score-manager replicas per peer (numSM)."""

    def execute():
        rows = {}
        for count in (1, 3, 6, 12):
            summary = _run(_base_params().with_overrides(num_score_managers=count))
            rows[count] = summary
        return rows

    rows = benchmark.pedantic(execute, rounds=1, iterations=1)
    table = format_table(
        ["numSM", "success rate", "final coop", "final uncoop", "run seconds"],
        [
            [count, s.success_rate, s.final_cooperative, s.final_uncooperative,
             s.elapsed_seconds]
            for count, s in rows.items()
        ],
    )
    print("\n" + table)
    for summary in rows.values():
        assert summary.success_rate > 0.75


def test_ablation_audit_timing(benchmark):
    """How quickly entrants are audited (auditTrans)."""

    def execute():
        rows = {}
        for audit_after in (5, 20, 80):
            summary = _run(
                _base_params().with_overrides(audit_transactions=audit_after)
            )
            rows[audit_after] = summary
        return rows

    rows = benchmark.pedantic(execute, rounds=1, iterations=1)
    table = format_table(
        ["auditTrans", "audits settled", "audits failed", "uncoop in system"],
        [
            [audit_after, s.audits_passed + s.audits_failed, s.audits_failed,
             s.final_uncooperative]
            for audit_after, s in rows.items()
        ],
    )
    print("\n" + table)
    # Earlier audits settle more contracts within the horizon.
    settled = [s.audits_passed + s.audits_failed for s in rows.values()]
    assert settled[0] >= settled[-1]


def test_ablation_bootstrap_policy(benchmark):
    """Lending vs open admission vs fixed initial credit."""

    def execute():
        rows = {}
        for mode in (BootstrapMode.LENDING, BootstrapMode.OPEN,
                     BootstrapMode.FIXED_CREDIT):
            summary = _run(_base_params().with_overrides(bootstrap_mode=mode))
            rows[mode.value] = summary
        return rows

    rows = benchmark.pedantic(execute, rounds=1, iterations=1)
    table = format_table(
        ["bootstrap", "uncoop admitted", "uncoop arrivals", "coop admitted",
         "success rate"],
        [
            [mode, s.admitted_uncooperative, s.arrivals_uncooperative,
             s.admitted_cooperative, s.success_rate]
            for mode, s in rows.items()
        ],
    )
    print("\n" + table)
    lending = rows[BootstrapMode.LENDING.value]
    open_mode = rows[BootstrapMode.OPEN.value]
    lending_fraction = lending.admitted_uncooperative / max(
        1, lending.arrivals_uncooperative
    )
    open_fraction = open_mode.admitted_uncooperative / max(
        1, open_mode.arrivals_uncooperative
    )
    assert lending_fraction < open_fraction
