"""Bench F6 — Figure 6: composition and refusals vs freerider arrival fraction."""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_figure6_freerider_fraction(benchmark, run_experiment):
    result = run_experiment("figure6", benchmark)
    coop = dict(result.series["Cooperative Peers"])
    # With only freeriders arriving, the cooperative community cannot exceed
    # its value when only cooperative peers arrive.
    assert coop[100.0] <= coop[0.0]
    assert_mostly_passing(result, minimum_fraction=0.6)
