"""Micro-benchmarks of the performance-critical building blocks.

These are classic pytest-benchmark targets (many fast iterations): the
transaction hot path, feedback delivery to the replicated store, score-manager
assignment resolution, topology sampling and overlay joins.  They document the
cost model of the simulator and catch accidental slow-downs.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationParameters
from repro.overlay.assignment import ScoreManagerAssignment
from repro.overlay.ring import ChordRing
from repro.rocq.protocol import FeedbackReport
from repro.rocq.store import ReputationStore
from repro.sim.engine import Simulation
from repro.topology.scale_free import ScaleFreeTopology


def _prepared_simulation(num_peers: int = 300) -> Simulation:
    params = SimulationParameters(
        num_initial_peers=num_peers,
        num_transactions=10_000,
        arrival_rate=0.0,
        sample_interval=5_000.0,
        seed=3,
    )
    simulation = Simulation(params)
    simulation.setup()
    return simulation


def test_transaction_throughput(benchmark):
    """One resource transaction end-to-end (selection, decision, feedback)."""
    simulation = _prepared_simulation()
    clock = iter(range(1, 10_000_000))

    def one_transaction():
        return simulation.transactions.execute(float(next(clock)))

    outcome = benchmark(one_transaction)
    assert outcome is not None


def test_report_delivery_throughput(benchmark):
    """Delivering one feedback report to all score-manager replicas."""
    ring = ChordRing()
    for peer_id in range(200):
        ring.join(peer_id)
    store = ReputationStore(
        assignment=ScoreManagerAssignment(ring=ring, num_score_managers=6)
    )
    counter = iter(range(1, 10_000_000))

    def deliver():
        time = float(next(counter))
        return store.submit_report(
            FeedbackReport(reporter=1, subject=2, value=1.0, quality=0.7, time=time)
        )

    value = benchmark(deliver)
    assert 0.0 <= value <= 1.0


def test_reputation_query_throughput(benchmark):
    """Querying the combined reputation of a peer (cache warm)."""
    simulation = _prepared_simulation()
    peer_id = simulation.population.active_ids[0]

    value = benchmark(simulation.store.global_reputation, peer_id)
    assert 0.0 <= value <= 1.0


def test_manager_assignment_resolution(benchmark):
    """Resolving the score managers of a peer without the store cache."""
    ring = ChordRing()
    for peer_id in range(1_000):
        ring.join(peer_id)
    assignment = ScoreManagerAssignment(ring=ring, num_score_managers=6)

    managers = benchmark(assignment.managers_for, 123)
    assert managers


def test_scale_free_sampling_throughput(benchmark):
    """Degree-proportional sampling from a 2,000-member scale-free topology."""
    topology = ScaleFreeTopology(attachment=2, rng=np.random.default_rng(1))
    for peer_id in range(2_000):
        topology.add_member(peer_id)
    rng = np.random.default_rng(2)

    member = benchmark(topology.sample_member, rng)
    assert member is not None


def test_overlay_join_cost(benchmark):
    """Joining one node to a 1,000-node ring (includes neighbour rewiring)."""
    ring = ChordRing()
    for peer_id in range(1_000):
        ring.join(peer_id)
    new_ids = iter(range(10_000, 10_000_000))

    def join_one():
        return ring.join(next(new_ids))

    node = benchmark(join_one)
    assert node.key >= 0
