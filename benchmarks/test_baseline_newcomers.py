"""Bench — baseline reputation systems and the newcomer taxonomy of §1.

Not a figure in the paper, but the quantitative backdrop of its motivation:
how long the classic systems take to score a community, and where each one
places a complete stranger relative to honest regulars and freeriders.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.reputation import EigenTrust, compare_newcomer_treatment


def test_newcomer_taxonomy(benchmark):
    reports = benchmark.pedantic(
        lambda: compare_newcomer_treatment(interactions=800, seed=7),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_table(
        ["system", "honest", "freerider", "newcomer"],
        [[r.system, r.honest_score, r.freerider_score, r.newcomer_score]
         for r in reports],
    ))
    for report in reports:
        assert report.separates_honest_from_freerider


def test_eigentrust_power_iteration(benchmark):
    """Micro-benchmark: EigenTrust convergence on a 60-peer interaction log."""
    system = EigenTrust(pre_trusted={0})
    import numpy as np

    rng = np.random.default_rng(3)
    for _ in range(2000):
        rater, subject = rng.integers(0, 60, size=2)
        if rater == subject:
            continue
        system.record_interaction(int(rater), int(subject), bool(rng.random() < 0.8))

    trust = benchmark(system.global_trust)
    assert abs(sum(trust.values()) - 1.0) < 1e-6
