"""Bench P — wall-clock of the process backend vs serial on a multi-point sweep.

Runs the same four-point arrival-rate sweep twice — once serially, once on a
process pool — asserts the results are bit-identical, and (on multi-core
machines) that the process backend is faster in wall-clock terms.  The
per-run horizon is sized so the sweep takes a couple of seconds serially,
which dwarfs process start-up costs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.config import SimulationParameters
from repro.parallel import ProcessExecutor
from repro.workloads.sweep import ParameterSweep, SweepPoint


def build_sweep() -> ParameterSweep:
    base = SimulationParameters(
        num_initial_peers=80,
        num_transactions=8_000,
        arrival_rate=0.02,
        waiting_period=200.0,
        sample_interval=1_000.0,
        audit_transactions=5,
        seed=7,
    )
    points = [
        SweepPoint(label=f"rate-{rate:g}", x=rate, overrides={"arrival_rate": rate})
        for rate in (0.005, 0.01, 0.02, 0.04)
    ]
    return ParameterSweep(name="parallel_bench", base=base, points=points, repeats=1)


def comparable(result) -> list[str]:
    documents = []
    for point in result.points:
        for summary in result.summaries_at(point.label):
            document = summary.to_dict()
            document.pop("elapsed_seconds")  # wall clock differs per backend
            # JSON text keeps NaN samples comparable (NaN != NaN as floats).
            documents.append(json.dumps(document, sort_keys=True))
    return documents


def effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_process_backend_matches_serial_and_beats_it_on_multicore():
    sweep = build_sweep()

    start = time.perf_counter()
    serial = sweep.run()
    serial_seconds = time.perf_counter() - start

    jobs = min(4, effective_cpus())
    executor = ProcessExecutor(jobs)
    start = time.perf_counter()
    parallel = sweep.run(executor=executor)
    parallel_seconds = time.perf_counter() - start
    executor.close()

    assert comparable(serial) == comparable(parallel)

    print(
        f"\nserial: {serial_seconds:.2f}s  "
        f"process x{jobs}: {parallel_seconds:.2f}s  "
        f"speedup: {serial_seconds / parallel_seconds:.2f}x"
    )
    if jobs < 2:
        pytest.skip("single-CPU machine: speedup is not measurable")
    # With >= 2 effective cores and seconds of per-point work the pool
    # overhead is noise, so no speedup almost always means the machine is
    # contended (shared CI runner, throttling) rather than the backend being
    # broken — record that as xfail instead of failing the whole suite on a
    # wall-clock measurement.  Set REPRO_BENCH_STRICT=1 to fail hard.
    if parallel_seconds >= serial_seconds * 0.95 and not os.environ.get(
        "REPRO_BENCH_STRICT"
    ):
        pytest.xfail(
            f"no wall-clock speedup on this machine "
            f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s serial, "
            f"{jobs} jobs) — contended or virtualised CPU"
        )
    assert parallel_seconds < serial_seconds * 0.95, (
        f"process backend ({parallel_seconds:.2f}s) should beat serial "
        f"({serial_seconds:.2f}s) with {jobs} jobs"
    )
