"""Bench T1 — Table 1: the default simulation parameters.

Regenerates the parameter table and verifies our defaults match the paper.
Also times parameter construction/validation (a pure-CPU micro-benchmark).
"""

from __future__ import annotations

from conftest import assert_mostly_passing

from repro.config import SimulationParameters


def test_table1_defaults(benchmark, run_experiment):
    result = run_experiment("table1", benchmark)
    assert_mostly_passing(result, minimum_fraction=1.0)
    assert result.scalars["arrival_rate (paper)"] == result.scalars["arrival_rate (ours)"]


def test_parameter_construction_throughput(benchmark):
    """Micro-benchmark: building and validating SimulationParameters."""

    def build() -> SimulationParameters:
        return SimulationParameters(arrival_rate=0.02, intro_amount=0.2)

    params = benchmark(build)
    assert params.arrival_rate == 0.02
