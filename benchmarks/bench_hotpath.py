#!/usr/bin/env python3
"""Hot-path benchmark runner (wrapper around ``python -m repro.bench``).

Measures the membership-change hot path — end-to-end transactions/sec on
growth-heavy workloads plus ring-op and assignment-lookup microbenchmarks —
comparing the incremental overlay/invalidation path against the seed's
legacy full-rewire/blanket-invalidation behaviour, and writes
``BENCH_hotpath.json``.

Run from the repo root::

    python benchmarks/bench_hotpath.py            # full sizes, ~30 s
    python benchmarks/bench_hotpath.py --quick    # CI smoke sizes, ~5 s

Accepts the same flags as ``python -m repro.bench`` (``--out``,
``--transactions``, ``--seed``, ``--quick``).
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.__main__ import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
