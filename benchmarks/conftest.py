"""Shared configuration for the benchmark suite.

Every figure/table of the paper has one benchmark module.  Because a full
paper-scale run (500,000 transactions, 10 repeats per sweep point) takes
hours in pure Python, the benchmarks default to a scaled-down configuration
that preserves the qualitative shapes; the scale is controlled by environment
variables so a full-scale reproduction is one command away:

``REPRO_BENCH_SCALE``
    Fraction of the paper's 500k-transaction horizon (default ``0.04``,
    i.e. 20,000 transactions per run).
``REPRO_BENCH_REPEATS``
    Independent repetitions per sweep point (default ``1``; the paper uses 10).
``REPRO_BENCH_SEED``
    Master seed (default ``1``).

Each benchmark prints the regenerated rows/series (visible with ``pytest -s``)
and writes the result JSON under ``benchmarks/results/`` so EXPERIMENTS.md can
reference the measured numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.storage import ResultStore
from repro.experiments import make_experiment
from repro.experiments.base import Experiment, ExperimentResult


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_SCALE = _env_float("REPRO_BENCH_SCALE", 0.04)
BENCH_REPEATS = _env_int("REPRO_BENCH_REPEATS", 1)
BENCH_SEED = _env_int("REPRO_BENCH_SEED", 1)
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Horizon scale used by every experiment benchmark."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_repeats() -> int:
    """Repeats per sweep point used by every experiment benchmark."""
    return BENCH_REPEATS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Master seed used by every experiment benchmark."""
    return BENCH_SEED


@pytest.fixture(scope="session")
def result_store() -> ResultStore:
    """Where benchmark results are persisted for EXPERIMENTS.md."""
    return ResultStore(RESULTS_DIR)


@pytest.fixture
def run_experiment(bench_scale, bench_repeats, bench_seed, result_store):
    """Factory fixture: build, run, validate, print and persist an experiment."""

    def _run(experiment_id: str, benchmark, **experiment_kwargs) -> ExperimentResult:
        def _execute() -> ExperimentResult:
            experiment: Experiment = make_experiment(
                experiment_id,
                scale=bench_scale,
                repeats=bench_repeats,
                seed=bench_seed,
            )
            for key, value in experiment_kwargs.items():
                setattr(experiment, key, value)
            return experiment.run_and_validate()

        result = benchmark.pedantic(_execute, rounds=1, iterations=1)
        print()
        print(result.render_text())
        result_store.save_json(experiment_id, result.to_dict())
        return result

    return _run


def assert_mostly_passing(result: ExperimentResult, minimum_fraction: float = 0.5) -> None:
    """Benchmarks assert the majority of shape checks hold at bench scale.

    Individual checks can be noisy at a 1-repeat, 4 %-scale run; the full
    picture (and the strict expectations) lives in the test suite and in
    full-scale runs.  A benchmark still fails when most checks break, which
    catches real regressions of the mechanism.
    """
    if not result.checks:
        return
    passed = sum(1 for check in result.checks if check.passed)
    fraction = passed / len(result.checks)
    detail = "; ".join(str(check) for check in result.checks if not check.passed)
    assert fraction >= minimum_fraction, (
        f"only {passed}/{len(result.checks)} shape checks passed: {detail}"
    )
