"""Bench F1 — Figure 1: uncooperative vs cooperative peer growth.

Regenerates the growth curves for the random and scale-free topologies and
checks the paper's qualitative claims (linear growth, slope far below the
admission-free ratio, topology independence).
"""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_figure1_growth(benchmark, run_experiment):
    result = run_experiment("figure1", benchmark)
    assert set(result.series) == {"Random Network", "Scale-free Network"}
    for label, points in result.series.items():
        assert len(points) >= 2, f"series {label} has too few samples"
    assert_mostly_passing(result, minimum_fraction=0.6)
