"""Bench F5 — Figure 5: community proportions vs amount of reputation lent.

Runs its own (smaller) introAmt sweep rather than reusing Figure 4's so the
benchmark is self-contained and its timing meaningful on its own.
"""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_figure5_lent_proportion(benchmark, run_experiment):
    result = run_experiment(
        "figure5", benchmark, amounts=(0.05, 0.15, 0.25, 0.35, 0.45)
    )
    for points in result.series.values():
        for _, proportion in points:
            assert 0.0 <= proportion <= 1.0
    assert_mostly_passing(result, minimum_fraction=0.5)
