"""Bench F3 — Figure 3: community composition vs proportion of naive introducers."""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_figure3_naive_proportion(benchmark, run_experiment):
    result = run_experiment("figure3", benchmark)
    assert set(result.series) == {"Cooperative Peers", "Uncooperative Peers"}
    uncoop = dict(result.series["Uncooperative Peers"])
    # More naive introducers never means fewer admitted freeriders overall
    # (allowing bench-scale noise via the shape checks below).
    assert uncoop[1.0] >= 0.0
    assert_mostly_passing(result, minimum_fraction=0.5)
