"""Bench E-SR — §4.1: decision success rate with vs without introductions."""

from __future__ import annotations

from conftest import assert_mostly_passing


def test_success_rate_with_and_without_introductions(benchmark, run_experiment):
    result = run_experiment("success", benchmark)
    rates = [
        value
        for name, value in result.scalars.items()
        if name.startswith("success rate —")
    ]
    assert len(rates) == 2
    assert all(0.0 <= rate <= 1.0 for rate in rates)
    assert_mostly_passing(result, minimum_fraction=0.5)
