#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and write a report.

This drives the same experiment orchestration the consolidated CLI uses
(:meth:`repro.api.SimulationService.run_experiments`).  By default it runs
at 4 % of the paper's horizon with a single repeat per sweep point so the
whole thing finishes in a few minutes; pass ``--scale 1.0 --repeats 10`` to
run the paper's exact operating point (hours of CPU time), and ``--jobs N``
to spread the simulations over worker processes — results are bit-identical
for any job count.

Run with::

    python examples/reproduce_paper.py --scale 0.04 --repeats 1 --out results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.storage import ResultStore
from repro.api import SimulationService
from repro.experiments import render_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.04,
                        help="fraction of the paper's 500k-transaction horizon")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repeats per sweep point (the paper uses 10)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiments (e.g. figure1 figure4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="simulations to run concurrently (1 = serial)")
    parser.add_argument("--out", type=Path, default=Path("results"),
                        help="output directory for JSON results and report.md")
    args = parser.parse_args(argv)

    store = ResultStore(args.out)
    with SimulationService(jobs=args.jobs) as service:
        results = service.run_experiments(
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            only=args.only,
            store=store,
            progress=lambda message: print(message, file=sys.stderr),
        )
    report = render_report(results)
    report_path = store.root / "report.md"
    report_path.write_text(report, encoding="utf-8")

    print(report)
    print(f"\nJSON results and report written to {store.root}/", file=sys.stderr)
    total = sum(len(result.checks) for result in results.values())
    passed = sum(
        sum(1 for check in result.checks if check.passed) for result in results.values()
    )
    print(f"shape checks passed: {passed}/{total}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
