#!/usr/bin/env python3
"""Explore the economics of introducing: stake size and introducer discipline.

Two questions a community operator deploying reputation lending would ask:

1. *How much reputation should an introducer stake?*  Too little and the
   penalty for vouching for a freerider is toothless; too much and honest
   members stop introducing anyone because they cannot afford the stake.
2. *How much does introducer discipline matter?*  If most members are naive
   (they vouch for anyone who asks), how many freeriders get in — and do the
   naive members pay for it?

Both questions are answered with small parameter sweeps run through one
:class:`~repro.api.SimulationService`, which owns the executor and run
cache for every sweep (swap ``SimulationService()`` for
``SimulationService(jobs=4)`` to run the sweep points in parallel —
results are bit-identical either way).

Run with::

    python examples/introducer_economics.py
"""

from __future__ import annotations

from repro import SimulationParameters
from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import format_table
from repro.api import SimulationService
from repro.workloads.sweep import ParameterSweep, SweepPoint


def stake_size_sweep(service: SimulationService, base: SimulationParameters) -> None:
    """Question 1: sweep the lent amount (the paper's Figure 4/5 axis)."""
    amounts = (0.05, 0.15, 0.25, 0.35, 0.45)
    sweep = ParameterSweep(
        name="example-stake",
        base=base,
        points=[
            SweepPoint(label=f"{amount:g}", x=amount,
                       overrides={"intro_amount": amount})
            for amount in amounts
        ],
        repeats=1,
    )
    result = service.sweep(sweep)
    admitted = result.series(lambda s: float(s.final_total))
    refused_stake = result.series(
        lambda s: float(s.refused_due_to_introducer_reputation)
    )
    print("How the stake size shapes admission")
    print(format_table(
        ["stake (introAmt)", "total peers admitted", "refused: introducer too poor"],
        [
            [x, total, refused]
            for (x, total, _), (_, refused, __) in zip(admitted, refused_stake)
        ],
    ))
    print()


def introducer_discipline_sweep(
    service: SimulationService, base: SimulationParameters
) -> None:
    """Question 2: sweep the fraction of naive introducers (Figure 3 axis)."""
    fractions = (0.0, 0.5, 1.0)
    sweep = ParameterSweep(
        name="example-naive",
        base=base,
        points=[
            SweepPoint(label=f"{fraction:g}", x=fraction,
                       overrides={"fraction_naive": fraction})
            for fraction in fractions
        ],
        repeats=1,
    )
    result = service.sweep(sweep)
    uncoop = result.series(lambda s: float(s.final_uncooperative))
    stakes_lost = result.series(lambda s: s.total_stakes_lost)
    print("How introducer discipline shapes the community")
    print(format_table(
        ["fraction naive", "freeriders in system", "reputation lost by introducers"],
        [
            [x, count, lost]
            for (x, count, _), (_, lost, __) in zip(uncoop, stakes_lost)
        ],
    ))
    print()
    print(ascii_plot(
        {"freeriders admitted": [(x, y) for x, y, _ in uncoop]},
        width=60,
        height=10,
        x_label="fraction of naive introducers",
        y_label="freeriders in system",
    ))
    print()


def main() -> None:
    base = SimulationParameters(seed=23, arrival_rate=0.02).scaled(0.04)
    print(
        f"Each configuration below simulates {base.num_transactions:,} "
        f"transactions with ~{base.expected_arrivals():.0f} arrivals.\n"
    )
    with SimulationService() as service:
        stake_size_sweep(service, base)
        introducer_discipline_sweep(service, base)
    print(
        "Takeaways: a moderate stake (~0.1-0.15) already disciplines introducers"
        "\nwithout pricing them out, and even a fully naive community is partly"
        "\nself-correcting — naive introducers bleed the reputation they keep"
        "\nstaking on freeriders, and eventually cannot introduce anyone."
    )


if __name__ == "__main__":
    main()
