#!/usr/bin/env python3
"""The newcomer bootstrap problem across classic reputation systems.

Section 1 of the paper classifies existing reputation systems by how they
treat a peer nobody has interacted with yet:

* complaints-based trust and bilateral credit schemes give it the full
  benefit of the doubt — which invites whitewashing (drop a tainted identity,
  return as a "newcomer");
* positive-only feedback and EigenTrust put it at the very bottom —
  indistinguishable from a known freerider, so it may never get served;
* two-sided schemes (beta reputation) park it exactly in the middle.

This example feeds the same synthetic interaction trace (honest regulars,
freeriders, and one complete stranger) to each baseline and prints where the
stranger lands — the problem reputation lending is designed to solve.

Run with::

    python examples/newcomer_problem.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import catalogue
from repro.reputation import compare_newcomer_treatment


def main() -> None:
    reports = compare_newcomer_treatment(
        num_honest=8, num_freeriders=3, interactions=800, seed=7
    )
    rows = []
    for report in reports:
        if report.newcomer_like_honest:
            verdict = "over-trusted (whitewashing works)"
        elif report.newcomer_score <= report.freerider_score + 0.05:
            verdict = "frozen out (bootstrap problem)"
        else:
            verdict = "in-between"
        rows.append([
            report.system,
            f"{report.honest_score:.2f}",
            f"{report.freerider_score:.2f}",
            f"{report.newcomer_score:.2f}",
            verdict,
        ])
    print("Scores after 800 rated interactions (higher = more trusted)\n")
    print(format_table(
        ["system", "honest regular", "known freerider", "stranger", "stranger's fate"],
        rows,
    ))
    print(
        "\nEvery baseline either hands strangers full trust (inviting identity"
        "\nchurn) or locks them out with the freeriders.  Reputation lending"
        "\ninstead lets an existing member vouch for the stranger with a"
        "\nrefundable stake — run examples/bootstrap_policies.py to see how that"
        "\nplays out inside the full simulator."
    )
    print(
        "\nEvery system above also runs inside the full simulation, as a"
        "\npluggable scheme (python -m repro catalogue schemes):\n"
    )
    for name, description in sorted(catalogue()["schemes"].items()):
        print(f"  {name:14s} {description}")


if __name__ == "__main__":
    main()
