#!/usr/bin/env python3
"""Compare bootstrap policies for a file-sharing community with freeriders.

The scenario the paper's introduction motivates: a cooperative file-sharing
community that wants to keep growing, while a quarter of the peers knocking
on the door are freeriders (and always badmouth their partners to protect
themselves).  We compare three ways of treating newcomers:

* **lending** — the paper's mechanism: an existing member stakes part of its
  reputation on the newcomer;
* **open** — everyone is admitted at a neutral reputation (the
  "benefit of the doubt" family of systems);
* **fixed credit** — everyone receives a flat starting credit, as BitTorrent's
  optimistic unchoking or Scrivener's initial balance do.

Each policy is one :class:`~repro.api.RunRequest`; the three are submitted
as a single batch, so a parallel service overlaps them on its worker pool.

Run with::

    python examples/bootstrap_policies.py
"""

from __future__ import annotations

from repro import BootstrapMode
from repro.analysis.tables import format_table
from repro.api import RunRequest, SimulationService

POLICIES = (BootstrapMode.LENDING, BootstrapMode.OPEN, BootstrapMode.FIXED_CREDIT)


def policy_request(mode: BootstrapMode) -> RunRequest:
    """The request running the motivating community under one policy."""
    return RunRequest(
        seed=11,
        scale=0.06,
        label=mode.value,
        overrides={
            "fraction_uncooperative": 0.25,
            "arrival_rate": 0.02,
            "bootstrap_mode": mode.value,
        },
    )


def distill(mode: BootstrapMode, summary) -> dict[str, str]:
    """The numbers the comparison cares about, formatted for the table."""
    freerider_fraction_admitted = summary.admitted_uncooperative / max(
        1, summary.arrivals_uncooperative
    )
    cooperative_fraction_admitted = summary.admitted_cooperative / max(
        1, summary.arrivals_cooperative
    )
    return {
        "policy": mode.value,
        "coop admitted": f"{cooperative_fraction_admitted:.0%}",
        "freeriders admitted": f"{freerider_fraction_admitted:.0%}",
        "final freerider share": f"{summary.final_uncooperative_fraction:.1%}",
        "success rate": f"{summary.success_rate:.2%}",
    }


def main() -> None:
    requests = [policy_request(mode) for mode in POLICIES]
    params = requests[0].resolve()
    print(
        f"File-sharing community: {params.num_initial_peers} founders, "
        f"~{params.expected_arrivals():.0f} arrivals over "
        f"{params.num_transactions:,} transactions, "
        f"{params.fraction_uncooperative:.0%} of arrivals are freeriders.\n"
    )

    with SimulationService() as service:
        batch = service.run_batch(requests)

    rows = [
        distill(mode, result.summary) for mode, result in zip(POLICIES, batch)
    ]
    headers = list(rows[0])
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))

    print(
        "\nAll three policies keep the serve/deny decisions accurate (ROCQ does"
        "\nthat regardless), but only reputation lending keeps most freeriders"
        "\nfrom ever becoming members: open admission and fixed credit let every"
        "\narrival in and rely on reputation decay after the damage is done."
    )


if __name__ == "__main__":
    main()
