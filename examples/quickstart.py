#!/usr/bin/env python3
"""Quickstart: run one reputation-lending community through the public API.

This is the smallest useful program against :mod:`repro.api`: describe the
run as a :class:`~repro.api.RunRequest` (the defaults are the paper's
Table 1, scaled down here so the script finishes in a few seconds), hand it
to a :class:`~repro.api.SimulationService`, and look at what the lending
mechanism did — who got in, who was kept out, and how reputations evolved.

Run with::

    python examples/quickstart.py

The same request runs from the shell as::

    python -m repro run --seed 7 --scale 0.08
"""

from __future__ import annotations

from repro.analysis.plotting import sparkline
from repro.analysis.tables import format_table
from repro.api import RunRequest, SimulationService


def main() -> None:
    # The paper's operating point, shortened from 500k to 40k transactions so
    # the example runs in a few seconds.  All other Table 1 values apply.
    request = RunRequest(seed=7, scale=0.08)
    params = request.resolve()
    print(f"Simulating {params.num_transactions:,} transactions "
          f"(arrival rate {params.arrival_rate}, "
          f"{params.fraction_uncooperative:.0%} of arrivals uncooperative)...\n")

    with SimulationService() as service:
        result = service.run(request)
    summary = result.summary

    print(format_table(
        ["quantity", "value"],
        [
            ["initial cooperative members", params.num_initial_peers],
            ["cooperative arrivals", summary.arrivals_cooperative],
            ["uncooperative arrivals", summary.arrivals_uncooperative],
            ["cooperative peers admitted", summary.admitted_cooperative],
            ["uncooperative peers admitted", summary.admitted_uncooperative],
            ["refused: introducer lacked reputation",
             summary.refused_due_to_introducer_reputation],
            ["refused: selective introducer said no",
             summary.refused_uncooperative_by_selective],
            ["introductions granted", summary.introductions_granted],
            ["audits passed / failed",
             f"{summary.audits_passed} / {summary.audits_failed}"],
            ["decision success rate", f"{summary.success_rate:.2%}"],
            ["final community size", summary.final_total],
            ["final uncooperative fraction",
             f"{summary.final_uncooperative_fraction:.2%}"],
            ["wall-clock seconds", f"{summary.elapsed_seconds:.1f}"],
        ],
    ))

    coop = summary.cooperative_reputation.finite()
    uncoop = summary.uncooperative_reputation.finite()
    print("\naverage reputation over time (sampled every "
          f"{params.sample_interval:g} time units)")
    print(f"  cooperative peers:   {sparkline(coop.values)}  "
          f"(final {coop.last_value():.3f})")
    print(f"  uncooperative peers: {sparkline(uncoop.values)}  "
          f"(final {uncoop.last_value(0.0):.3f})")
    print("\nThe lending mechanism admits nearly every cooperative arrival while")
    print("keeping the majority of freeriders out — without hurting the accuracy")
    print("of the underlying ROCQ serve/deny decisions.")


if __name__ == "__main__":
    main()
