#!/usr/bin/env python3
"""Quickstart: run one reputation-lending community and inspect the outcome.

This is the smallest useful program against the public API: configure the
simulation (the defaults are the paper's Table 1, scaled down here so the
script finishes in a few seconds), run it, and look at what the lending
mechanism did — who got in, who was kept out, and how reputations evolved.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationParameters, run_simulation
from repro.analysis.plotting import sparkline
from repro.analysis.tables import format_table


def main() -> None:
    # The paper's operating point, shortened from 500k to 40k transactions so
    # the example runs in a few seconds.  All other Table 1 values apply.
    params = SimulationParameters(seed=7).scaled(0.08)
    print(f"Simulating {params.num_transactions:,} transactions "
          f"(arrival rate {params.arrival_rate}, "
          f"{params.fraction_uncooperative:.0%} of arrivals uncooperative)...\n")

    summary = run_simulation(params)

    print(format_table(
        ["quantity", "value"],
        [
            ["initial cooperative members", params.num_initial_peers],
            ["cooperative arrivals", summary.arrivals_cooperative],
            ["uncooperative arrivals", summary.arrivals_uncooperative],
            ["cooperative peers admitted", summary.admitted_cooperative],
            ["uncooperative peers admitted", summary.admitted_uncooperative],
            ["refused: introducer lacked reputation",
             summary.refused_due_to_introducer_reputation],
            ["refused: selective introducer said no",
             summary.refused_uncooperative_by_selective],
            ["introductions granted", summary.introductions_granted],
            ["audits passed / failed",
             f"{summary.audits_passed} / {summary.audits_failed}"],
            ["decision success rate", f"{summary.success_rate:.2%}"],
            ["final community size", summary.final_total],
            ["final uncooperative fraction",
             f"{summary.final_uncooperative_fraction:.2%}"],
            ["wall-clock seconds", f"{summary.elapsed_seconds:.1f}"],
        ],
    ))

    coop = summary.cooperative_reputation.finite()
    uncoop = summary.uncooperative_reputation.finite()
    print("\naverage reputation over time (sampled every "
          f"{params.sample_interval:g} time units)")
    print(f"  cooperative peers:   {sparkline(coop.values)}  "
          f"(final {coop.last_value():.3f})")
    print(f"  uncooperative peers: {sparkline(uncoop.values)}  "
          f"(final {uncoop.last_value(0.0):.3f})")
    print("\nThe lending mechanism admits nearly every cooperative arrival while")
    print("keeping the majority of freeriders out — without hurting the accuracy")
    print("of the underlying ROCQ serve/deny decisions.")


if __name__ == "__main__":
    main()
